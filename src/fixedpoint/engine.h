// Integer-only fixed-point inference engine — the deployment target the
// paper's Graffitist inference graphs map onto ("scale factors and quantized
// weights from TQT can be ported directly onto the target of choice"; the
// paper verified its CPU inference graphs bit-accurate to an FPGA
// implementation, §4.2). This module substitutes for that FPGA: a quantized
// inference graph is *compiled* into a linear program of integer instructions
// (int8/int16 tensors, int32+ accumulators, power-of-2 rescales implemented
// as bit-shifts with round-half-to-even), and the test suite asserts bit
// exactness against the float fake-quant graph.
//
// The engine is split into three stages (see DESIGN.md §9):
//   compile  (engine.cpp)    graph -> linear FpInstr program
//   plan     (plan.cpp)      value-bound width inference (int8/16/32/64 per
//                            register), typed weight packing, liveness-based
//                            arena-slot assignment
//   execute  (exec.cpp)      narrow-width kernels (src/fixedpoint/kernels/)
//                            running in a reusable, grow-only ExecContext
//                            arena — zero heap allocations at steady state
//
// The original interpreter, which stores every lane as int64, is retained as
// run_reference()/run_raw_reference() (reference.cpp): it is the executable
// specification the typed engine is asserted bit-identical against.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace tqt {

/// FixedPointProgram::load could not open the artifact at all (missing file,
/// permission problem). Distinct from ProgramFormatError so callers — the
/// serving registry, the gateway admin plane — can answer "not found" and
/// "corrupt" with different typed statuses.
struct ProgramIoError : std::runtime_error {
  explicit ProgramIoError(const std::string& what) : std::runtime_error(what) {}
};

/// The artifact exists but its content is not a valid fixed-point program
/// (bad magic, unsupported version, truncation, absurd lengths).
struct ProgramFormatError : std::runtime_error {
  explicit ProgramFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// A tensor of integers at a power-of-2 scale: real value = data[i] * 2^e.
/// This is the *reference* representation (int64 lanes, the logical 8/16-bit
/// width enforced by saturation); the typed engine keeps registers in
/// int8_t/int16_t/int32_t/int64_t buffers chosen by the memory plan.
struct IntTensor {
  Shape shape;
  std::vector<int64_t> data;
  int exponent = 0;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
};

/// Physical storage width of a register or constant in the typed engine.
enum class IntWidth : uint8_t { kI8, kI16, kI32, kI64 };

inline int width_bytes(IntWidth w) {
  switch (w) {
    case IntWidth::kI8: return 1;
    case IntWidth::kI16: return 2;
    case IntWidth::kI32: return 4;
    case IntWidth::kI64: return 8;
  }
  return 8;
}

const char* to_string(IntWidth w);

/// One instruction of the compiled program. Register file semantics: each
/// instruction reads `inputs` registers and writes register `output`.
struct FpInstr {
  enum class Kind {
    kQuantizeInput,  ///< real input -> int8 at `out_exponent`
    kConv2d,         ///< int8 x const int8 weights -> int32 accumulator
    kDepthwise,
    kDense,
    kBiasAdd,        ///< add const integer bias (same exponent)
    kRequant,        ///< rescale by bit-shift (round-half-to-even), saturate
    kRelu,
    kRelu6,
    kLeakyRelu,      ///< alpha as integer multiplier at its own exponent
    kMaxPool,
    kEltwiseAdd,
    kConcat,
    kFlatten,
    // Fused matmul + epilogue forms produced by the graph compiler
    // (fuse.cpp). Appended after the v1 kinds so serialized kind ids stay
    // stable across format versions.
    kConv2dFused,
    kDepthwiseFused,
    kDenseFused,
    // Layout-transform pseudo-ops. These exist only in the execution stream
    // (ExecPlan::instrs) that finalize() derives when the autotuner selects a
    // channel-blocked kernel; the canonical program (instrs_) never contains
    // them, so the serialized format and the reference interpreter are
    // unaffected.
    kLayoutPack,    ///< NHWC -> NC8HW8, zero-filling padded channel lanes
    kLayoutUnpack,  ///< NC8HW8 -> NHWC, dropping padded channel lanes
  };

  /// Epilogue step opcodes for the fused matmul kinds (see `epi_data`).
  enum class EpiOp : int64_t {
    kRequant = 0,  ///< a = target exponent, b/c = clamp lo/hi
    kBias = 1,     ///< v += bias_data[channel] (exponent unchanged)
    kRelu = 2,     ///< v = max(v, 0)
    kClamp = 3,    ///< v = saturate(v, b, c)  (relu6)
    kLeaky = 4,    ///< a = alpha exponent, b = alpha_q; v = max(v << -a, v*b)
  };
  /// epi_data holds `kEpiStepInts` int64 lanes per step: {op, a, b, c}.
  static constexpr int kEpiStepInts = 4;

  Kind kind{};
  std::vector<int> inputs;
  int output = -1;

  Conv2dGeom geom{};             // conv / pool geometry
  std::vector<int64_t> const_data;  // quantized weights or bias
  Shape const_shape;
  int const_exponent = 0;

  int out_exponent = 0;          // requant / quantize target scale
  int64_t clamp_lo = 0, clamp_hi = 0;  // saturation bounds (requant, relu6)

  int64_t alpha_q = 0;           // leaky relu: slope = alpha_q * 2^alpha_exponent
  int alpha_exponent = 0;

  /// Fused kinds only: ordered epilogue applied to each int64 accumulator
  /// lane before the single narrowing store — exactly the instruction
  /// sequence the fusion pass absorbed, so bit-exactness vs. the unfused
  /// program holds by construction. Empty for every other kind.
  std::vector<int64_t> epi_data;
  /// Fused kinds only: per-output-channel bias absorbed from a kBiasAdd
  /// (applied at the scale in effect where the bias step sits).
  std::vector<int64_t> bias_data;
  /// Per-channel weight scales (matmul kinds and the requant consuming their
  /// output): chan_data[c] = e_w[c] - min_c e_w[c] >= 0, the channel's
  /// exponent delta above `const_exponent`. Output lane c of the matmul is
  /// really at exponent (x_exp + const_exponent + chan_data[c]); the first
  /// downstream requant applies the per-lane correction. Empty for the
  /// per-tensor case.
  std::vector<int64_t> chan_data;

  std::string debug_name;        // originating graph node
};

/// One decoded epilogue step of a fused instruction.
struct FpEpiStep {
  int64_t op = 0, a = 0, b = 0, c = 0;
};

inline int epi_step_count(const FpInstr& in) {
  return static_cast<int>(in.epi_data.size()) / FpInstr::kEpiStepInts;
}

inline FpEpiStep epi_step(const FpInstr& in, int i) {
  const size_t base = static_cast<size_t>(i) * FpInstr::kEpiStepInts;
  return {in.epi_data[base], in.epi_data[base + 1], in.epi_data[base + 2],
          in.epi_data[base + 3]};
}

inline bool is_fused_kind(FpInstr::Kind k) {
  return k == FpInstr::Kind::kConv2dFused || k == FpInstr::Kind::kDepthwiseFused ||
         k == FpInstr::Kind::kDenseFused;
}

/// True for any matmul-family instruction, fused or not.
inline bool is_matmul_kind(FpInstr::Kind k) {
  return k == FpInstr::Kind::kConv2d || k == FpInstr::Kind::kDepthwise ||
         k == FpInstr::Kind::kDense || is_fused_kind(k);
}

/// The fused counterpart of a bare matmul kind (precondition: base matmul).
inline FpInstr::Kind fused_kind_of(FpInstr::Kind k) {
  switch (k) {
    case FpInstr::Kind::kConv2d: return FpInstr::Kind::kConv2dFused;
    case FpInstr::Kind::kDepthwise: return FpInstr::Kind::kDepthwiseFused;
    default: return FpInstr::Kind::kDenseFused;
  }
}

/// The bare matmul a fused kind was built from (identity on unfused kinds).
inline FpInstr::Kind base_kind_of(FpInstr::Kind k) {
  switch (k) {
    case FpInstr::Kind::kConv2dFused: return FpInstr::Kind::kConv2d;
    case FpInstr::Kind::kDepthwiseFused: return FpInstr::Kind::kDepthwise;
    case FpInstr::Kind::kDenseFused: return FpInstr::Kind::kDense;
    default: return k;
  }
}

/// Instruction kind name ("conv2d", "requant", ...) — used by the trace
/// spans the executor emits and by diagnostics.
const char* to_string(FpInstr::Kind k);

struct ExecPlan;  // plan.h

namespace autotune {
struct ProgramTuning;  // autotune.h
}

/// Runtime shape of one register (rank <= 4, the engine's NHWC world).
/// `dims` always stores the logical NHWC shape; `blocked` marks registers
/// holding the NC8HW8 channel-blocked layout, whose storage numel rounds the
/// channel dim up to a whole block (numel reflects that padded figure —
/// it is what slot sizing and kernels index by).
struct FpRegShape {
  int64_t dims[4] = {0, 0, 0, 0};
  int rank = 0;
  int64_t numel = 0;
  bool blocked = false;
};

/// Reusable execution state for the typed engine: the slot arena the memory
/// plan maps registers onto, the im2col pack scratch, and per-run register
/// shapes. All buffers are grow-only — after a warm-up run at a given
/// (program, input shape), subsequent runs perform zero heap allocations.
///
/// A context is NOT thread-safe; give each worker thread its own (the serve
/// micro-batcher owns one per worker). One context may be reused freely
/// across different programs and input shapes — buffers grow to the
/// high-water mark and stay.
class ExecContext {
 public:
  ExecContext() = default;

  /// Bytes currently held by the arena (slots + scratch), for tests/bench.
  int64_t arena_bytes() const;

 private:
  friend class FixedPointProgram;
  std::vector<std::vector<unsigned char>> slots_;  // indexed by plan slot id
  std::vector<unsigned char> scratch_;             // im2col pack buffer
  std::vector<unsigned char> acc_scratch_;         // int64 accumulators for
                                                   // fused instrs off the
                                                   // fast kernel path
  std::vector<FpRegShape> regs_;                   // per-register run shapes
};

/// Fusion/scheduling statistics recorded by finalize() (all zero when fusion
/// is disabled). Arena byte figures are the planner's nominal single-image
/// estimate, also exported as engine.fusion.* gauges in tqt-observe.
struct FuseStats {
  int instrs_before = 0;
  int instrs_after = 0;
  int fused_matmuls = 0;       ///< matmul chains rewritten into fused kinds
  int absorbed_instrs = 0;     ///< instructions folded into epilogues
  int collapsed_requants = 0;  ///< standalone requant pairs merged exactly
  int64_t arena_bytes_before = 0;
  int64_t arena_bytes_after = 0;
};

/// Compiled integer program.
class FixedPointProgram {
 public:
  /// THE execution entry point of the typed engine: run on a real-valued
  /// NHWC input batch, writing the de-quantized network output into `out`
  /// (bit-identical to the fake-quant graph and to run_reference by
  /// construction). `out` is resized only when the output shape changes;
  /// after one warm-up call per (program, input shape), this performs zero
  /// heap allocations — asserted in tests. Every other run variant is a thin
  /// wrapper over this one, so the observe hooks (engine.runs /
  /// engine.instructions counters, per-instruction TQT_TRACE spans) are
  /// wired in exactly one place.
  void run_into(const Tensor& input, ExecContext& ctx, Tensor& out) const;

  /// Convenience wrapper: run_into with a fresh result tensor. Deprecated —
  /// call run_into with a reused output tensor to keep the steady-state
  /// zero-allocation contract.
  [[deprecated("use run_into(input, ctx, out)")]]
  Tensor run(const Tensor& input, ExecContext& ctx) const {
    Tensor out;
    run_into(input, ctx, out);
    return out;
  }

  /// Convenience wrapper: run_into with a thread-local context. Deprecated —
  /// own an ExecContext (and a reused output tensor) on worker threads.
  [[deprecated("use run_into(input, ctx, out) with a caller-owned ExecContext")]]
  Tensor run(const Tensor& input) const {
    thread_local ExecContext ctx;
    Tensor out;
    run_into(input, ctx, out);
    return out;
  }

  /// Execute (typed engine) and return the raw integer output plus exponent.
  IntTensor run_raw(const Tensor& input) const;

  /// Reference interpreter: every lane an int64. Slow; retained as the
  /// executable specification for bit-exactness tests and as the baseline
  /// for bench_engine_kernels.
  Tensor run_reference(const Tensor& input) const;
  IntTensor run_raw_reference(const Tensor& input) const;

  int64_t instruction_count() const { return static_cast<int64_t>(instrs_.size()); }
  const std::vector<FpInstr>& instructions() const { return instrs_; }

  /// The memory/width plan the typed engine executes under (built once at
  /// compile/load time). Exposed for tests and the kernel bench.
  const ExecPlan& plan() const;

  int register_count() const { return n_registers; }
  int input_reg() const { return input_register; }
  int output_reg() const { return output_register; }

  /// Total number of stored quantized parameters (weights + biases).
  int64_t parameter_count() const;

  /// What the graph compiler did to this program at finalize time.
  const FuseStats& fusion_stats() const { return fuse_stats_; }

  /// Autotuner decisions for this program (null when tuning is off or no
  /// fused matmuls exist). Shared with the global shape cache.
  const std::shared_ptr<const autotune::ProgramTuning>& tuning() const { return tuning_; }

  /// Re-run the compile-time passes (fusion, scheduling, planning) under the
  /// current fusion setting — lets the bench A/B one compiled program. Note
  /// fusion is one-way: refinalizing a fused program cannot unfuse it.
  void refinalize() { finalize(); }

  /// Serialize the program (instructions + quantized weights + scales) to a
  /// binary file — the artifact that would be shipped to the fixed-point
  /// target ("scale factors and quantized weights from TQT can be ported
  /// directly", paper §4.2). Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Load a program previously written by save(); throws on malformed input.
  static FixedPointProgram load(const std::string& path);

 private:
  friend FixedPointProgram compile_fixed_point(Graph&, NodeId, NodeId);

  /// Build the ExecPlan (width inference + typed consts + slot assignment).
  /// Called by compile_fixed_point and load; programs always carry a plan.
  void finalize();

  std::vector<FpInstr> instrs_;
  int n_registers = 0;
  int input_register = -1;
  int output_register = -1;
  std::shared_ptr<const ExecPlan> plan_;
  FuseStats fuse_stats_;
  std::shared_ptr<const autotune::ProgramTuning> tuning_;
  /// Set by load(): path of a .tqt.tune sidecar to consult before measuring
  /// (stale or corrupt sidecars silently fall back to a fresh tune).
  std::string tune_source_path_;
};

/// Compile a quantized inference graph (output of quantize_pass with
/// emulate_intermediates, quantizers enabled, eval mode) into a fixed-point
/// program. `quantized_output` is QuantizePassResult::quantized_output.
FixedPointProgram compile_fixed_point(Graph& g, NodeId input_node, NodeId quantized_output);

}  // namespace tqt
