// Integer-only fixed-point inference engine — the deployment target the
// paper's Graffitist inference graphs map onto ("scale factors and quantized
// weights from TQT can be ported directly onto the target of choice"; the
// paper verified its CPU inference graphs bit-accurate to an FPGA
// implementation, §4.2). This module substitutes for that FPGA: a quantized
// inference graph is *compiled* into a linear program of integer instructions
// (int8/int16 tensors, int32+ accumulators, power-of-2 rescales implemented
// as bit-shifts with round-half-to-even), and the test suite asserts bit
// exactness against the float fake-quant graph.
//
// Representation: every live value is an IntTensor holding int64 lanes (the
// *logical* width — 8/16 bits — is enforced by saturation) together with the
// power-of-2 exponent e such that real = data * 2^e.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace tqt {

/// A tensor of integers at a power-of-2 scale: real value = data[i] * 2^e.
struct IntTensor {
  Shape shape;
  std::vector<int64_t> data;
  int exponent = 0;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
};

/// One instruction of the compiled program. Register file semantics: each
/// instruction reads `inputs` registers and writes register `output`.
struct FpInstr {
  enum class Kind {
    kQuantizeInput,  ///< real input -> int8 at `out_exponent`
    kConv2d,         ///< int8 x const int8 weights -> int32 accumulator
    kDepthwise,
    kDense,
    kBiasAdd,        ///< add const integer bias (same exponent)
    kRequant,        ///< rescale by bit-shift (round-half-to-even), saturate
    kRelu,
    kRelu6,
    kLeakyRelu,      ///< alpha as integer multiplier at its own exponent
    kMaxPool,
    kEltwiseAdd,
    kConcat,
    kFlatten,
  };

  Kind kind{};
  std::vector<int> inputs;
  int output = -1;

  Conv2dGeom geom{};             // conv / pool geometry
  std::vector<int64_t> const_data;  // quantized weights or bias
  Shape const_shape;
  int const_exponent = 0;

  int out_exponent = 0;          // requant / quantize target scale
  int64_t clamp_lo = 0, clamp_hi = 0;  // saturation bounds (requant, relu6)

  int64_t alpha_q = 0;           // leaky relu: slope = alpha_q * 2^alpha_exponent
  int alpha_exponent = 0;

  std::string debug_name;        // originating graph node
};

/// Compiled integer program.
class FixedPointProgram {
 public:
  /// Execute on a real-valued NHWC input batch; returns the de-quantized
  /// network output (bit-identical to the fake-quant graph by construction).
  Tensor run(const Tensor& input) const;

  /// Execute and return the raw integer output plus its exponent.
  IntTensor run_raw(const Tensor& input) const;

  int64_t instruction_count() const { return static_cast<int64_t>(instrs_.size()); }
  const std::vector<FpInstr>& instructions() const { return instrs_; }

  /// Total number of stored quantized parameters (weights + biases).
  int64_t parameter_count() const;

  /// Serialize the program (instructions + quantized weights + scales) to a
  /// binary file — the artifact that would be shipped to the fixed-point
  /// target ("scale factors and quantized weights from TQT can be ported
  /// directly", paper §4.2). Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Load a program previously written by save(); throws on malformed input.
  static FixedPointProgram load(const std::string& path);

 private:
  friend FixedPointProgram compile_fixed_point(Graph&, NodeId, NodeId);
  std::vector<FpInstr> instrs_;
  int n_registers = 0;
  int input_register = -1;
  int output_register = -1;
};

/// Compile a quantized inference graph (output of quantize_pass with
/// emulate_intermediates, quantizers enabled, eval mode) into a fixed-point
/// program. `quantized_output` is QuantizePassResult::quantized_output.
FixedPointProgram compile_fixed_point(Graph& g, NodeId input_node, NodeId quantized_output);

}  // namespace tqt
