// Instruction fusion for the typed fixed-point engine (see fuse.h).
//
// The central rewrite: a matmul whose result flows through a single-use
// chain of requant / bias-add / activation instructions becomes one fused
// instruction carrying the chain as an ordered epilogue step list
// (FpInstr::epi_data). No algebra is performed on the chain — each step IS
// the absorbed instruction's per-lane function, replayed in order on the
// int64 accumulator — so the fused program is bit-exact against the unfused
// one by construction. That matters because requant composition does NOT
// commute in general: round-half-to-even applied twice is not one wider
// shift (rhe(rhe(11, 2), 1) = 2 but rhe(11, 3) = 1), which is also why the
// standalone requant-pair collapse below only fires for the provably exact
// zero-net-shift case.
#include "fixedpoint/fuse.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace tqt {

namespace {

// -1 = automatic (TQT_FUSE env, default on), 0 = off, 1 = on.
int g_fuse_mode = -1;

/// Instruction kinds a fused epilogue can absorb. All are single-input
/// elementwise ops whose per-lane function the epilogue replays exactly.
bool is_epi_kind(FpInstr::Kind k) {
  return k == FpInstr::Kind::kRequant || k == FpInstr::Kind::kBiasAdd ||
         k == FpInstr::Kind::kRelu || k == FpInstr::Kind::kRelu6 ||
         k == FpInstr::Kind::kLeakyRelu;
}

/// Epilogue length cap. The longest real chain (darknet: requant + bias +
/// requant + leaky + requant) is 5 steps; 8 leaves headroom without letting
/// a degenerate graph build unbounded step lists.
constexpr int kMaxEpiSteps = 8;

struct UseInfo {
  std::vector<int> uses;      ///< reads per register
  std::vector<int> consumer;  ///< sole reading instr, -1 none, -2 many
  std::vector<int> producer;  ///< writing instr, -1 none
};

UseInfo build_uses(const std::vector<FpInstr>& instrs, const std::vector<char>& dead,
                   int n_registers) {
  UseInfo u;
  u.uses.assign(static_cast<size_t>(n_registers), 0);
  u.consumer.assign(static_cast<size_t>(n_registers), -1);
  u.producer.assign(static_cast<size_t>(n_registers), -1);
  for (size_t i = 0; i < instrs.size(); ++i) {
    if (dead[i]) continue;
    for (int r : instrs[i].inputs) {
      const auto ri = static_cast<size_t>(r);
      u.consumer[ri] = ++u.uses[ri] == 1 ? static_cast<int>(i) : -2;
    }
    u.producer[static_cast<size_t>(instrs[i].output)] = static_cast<int>(i);
  }
  return u;
}

void push_step(std::vector<int64_t>& epi, FpInstr::EpiOp op, int64_t a, int64_t b,
               int64_t c) {
  epi.push_back(static_cast<int64_t>(op));
  epi.push_back(a);
  epi.push_back(b);
  epi.push_back(c);
}

}  // namespace

bool fusion_enabled() {
  if (g_fuse_mode >= 0) return g_fuse_mode != 0;
  const char* env = std::getenv("TQT_FUSE");
  return !(env && std::strcmp(env, "0") == 0);
}

void set_fusion_enabled(int mode) { g_fuse_mode = mode; }

FuseStats fuse_program(std::vector<FpInstr>& instrs, int n_registers,
                       int input_register, int output_register) {
  (void)input_register;
  FuseStats st;
  st.instrs_before = static_cast<int>(instrs.size());
  std::vector<char> dead(instrs.size(), 0);

  // ---- 1. Matmul epilogue chains ---------------------------------------
  // Chains never overlap (every absorbed intermediate is single-use), so one
  // use map built up front stays valid across rewrites.
  {
    const UseInfo u = build_uses(instrs, dead, n_registers);
    for (size_t i = 0; i < instrs.size(); ++i) {
      FpInstr& mm = instrs[i];
      if (mm.kind != FpInstr::Kind::kConv2d && mm.kind != FpInstr::Kind::kDepthwise &&
          mm.kind != FpInstr::Kind::kDense) {
        continue;
      }
      std::vector<int64_t> epi;
      std::vector<int64_t> bias;
      std::vector<size_t> absorbed;
      int tail = mm.output;
      while (static_cast<int>(absorbed.size()) < kMaxEpiSteps) {
        // The program output must stay where downstream consumers (and the
        // executor's final dequantize) expect it, and an intermediate read
        // more than once cannot vanish into a register-resident epilogue.
        if (tail == output_register) break;
        if (u.uses[static_cast<size_t>(tail)] != 1) break;
        const int ci = u.consumer[static_cast<size_t>(tail)];
        if (ci < 0) break;
        const FpInstr& nx = instrs[static_cast<size_t>(ci)];
        if (!is_epi_kind(nx.kind) || nx.inputs.size() != 1) break;
        switch (nx.kind) {
          case FpInstr::Kind::kRequant:
            push_step(epi, FpInstr::EpiOp::kRequant, nx.out_exponent, nx.clamp_lo,
                      nx.clamp_hi);
            break;
          case FpInstr::Kind::kBiasAdd:
            if (!bias.empty() || nx.const_data.empty()) goto chain_done;
            push_step(epi, FpInstr::EpiOp::kBias, 0, 0, 0);
            bias = nx.const_data;
            break;
          case FpInstr::Kind::kRelu:
            push_step(epi, FpInstr::EpiOp::kRelu, 0, 0, 0);
            break;
          case FpInstr::Kind::kRelu6:
            push_step(epi, FpInstr::EpiOp::kClamp, 0, nx.clamp_lo, nx.clamp_hi);
            break;
          case FpInstr::Kind::kLeakyRelu:
            push_step(epi, FpInstr::EpiOp::kLeaky, nx.alpha_exponent, nx.alpha_q, 0);
            break;
          default:
            goto chain_done;
        }
        absorbed.push_back(static_cast<size_t>(ci));
        tail = nx.output;
      }
    chain_done:
      if (absorbed.empty()) continue;
      mm.kind = fused_kind_of(mm.kind);
      mm.output = tail;
      mm.epi_data = std::move(epi);
      mm.bias_data = std::move(bias);
      for (size_t a : absorbed) dead[a] = 1;
      ++st.fused_matmuls;
      st.absorbed_instrs += static_cast<int>(absorbed.size());
    }
  }

  // ---- 2. Cleanup to fixpoint ------------------------------------------
  // (a) Standalone requant pairs where the second shift is zero (equal
  //     target exponents): the second is a pure clamp, and clamp-of-clamp
  //     composes exactly — intersect, or pin to the nearer bound when the
  //     intersection is empty. Pairs with a nonzero second shift are left
  //     alone: collapsing them would change round-half-to-even results.
  // (b) Flatten-of-flatten: the outer reshape subsumes the inner.
  // (c) Dead code: an instruction whose output nothing reads (absorbed
  //     chains expose these only transiently, but a defensive sweep keeps
  //     the invariant simple).
  for (bool changed = true; changed;) {
    changed = false;
    const UseInfo u = build_uses(instrs, dead, n_registers);
    for (size_t i = 0; i < instrs.size() && !changed; ++i) {
      if (dead[i]) continue;
      FpInstr& in = instrs[i];
      if (u.uses[static_cast<size_t>(in.output)] == 0 && in.output != output_register) {
        dead[i] = 1;
        changed = true;
        break;
      }
      if (in.inputs.size() != 1) continue;
      const int src = in.inputs[0];
      const int pi = u.producer[static_cast<size_t>(src)];
      if (pi < 0 || u.uses[static_cast<size_t>(src)] != 1 || src == output_register) {
        continue;
      }
      FpInstr& prev = instrs[static_cast<size_t>(pi)];
      if (in.kind == FpInstr::Kind::kRequant && prev.kind == FpInstr::Kind::kRequant &&
          in.out_exponent == prev.out_exponent) {
        int64_t lo = std::max(prev.clamp_lo, in.clamp_lo);
        int64_t hi = std::min(prev.clamp_hi, in.clamp_hi);
        if (lo > hi) {
          // Disjoint ranges: everything the first clamp admits lands on one
          // bound of the second.
          lo = hi = prev.clamp_hi < in.clamp_lo ? in.clamp_lo : in.clamp_hi;
        }
        prev.clamp_lo = lo;
        prev.clamp_hi = hi;
        prev.output = in.output;
        dead[i] = 1;
        ++st.collapsed_requants;
        changed = true;
      } else if (in.kind == FpInstr::Kind::kFlatten &&
                 prev.kind == FpInstr::Kind::kFlatten) {
        in.inputs[0] = prev.inputs[0];
        dead[pi] = 1;
        changed = true;
      }
    }
  }

  std::vector<FpInstr> out;
  out.reserve(instrs.size());
  for (size_t i = 0; i < instrs.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(instrs[i]));
  }
  instrs = std::move(out);
  st.instrs_after = static_cast<int>(instrs.size());
  return st;
}

void insert_layout_ops(std::vector<FpInstr>& stream, std::vector<fpk::Algo>& algos,
                       int* n_registers, int output_register) {
  // Pre-scan: which registers are produced by a blocked instruction, and
  // which of those are read by anything that cannot consume NC8HW8 lanes
  // (a non-blocked instruction, a second operand slot — blocked kernels are
  // single-input — or the program output).
  const auto is_blocked = [&](size_t i) {
    return i < algos.size() && algos[i] == fpk::Algo::kBlocked;
  };
  std::vector<char> blocked_out(static_cast<size_t>(*n_registers), 0);
  std::vector<char> needs_unpack(static_cast<size_t>(*n_registers), 0);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (is_blocked(i)) blocked_out[static_cast<size_t>(stream[i].output)] = 1;
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    for (size_t a = 0; a < stream[i].inputs.size(); ++a) {
      const int r = stream[i].inputs[a];
      if (!blocked_out[static_cast<size_t>(r)]) continue;
      if (!(is_blocked(i) && a == 0)) needs_unpack[static_cast<size_t>(r)] = 1;
    }
  }
  if (output_register >= 0 && blocked_out[static_cast<size_t>(output_register)]) {
    needs_unpack[static_cast<size_t>(output_register)] = 1;
  }

  std::vector<FpInstr> out;
  std::vector<fpk::Algo> out_algos;
  out.reserve(stream.size() + 4);
  out_algos.reserve(stream.size() + 4);
  // Standard-layout register -> its packed twin; blocked producer's original
  // output id -> the register actually holding the blocked lanes.
  std::vector<int> packed_of(static_cast<size_t>(*n_registers), -1);
  std::vector<int> blocked_reg(static_cast<size_t>(*n_registers), -1);

  for (size_t i = 0; i < stream.size(); ++i) {
    FpInstr in = std::move(stream[i]);
    const fpk::Algo algo = i < algos.size() ? algos[i] : fpk::Algo::kAuto;
    if (algo == fpk::Algo::kBlocked) {
      const int src = in.inputs[0];
      if (blocked_reg[static_cast<size_t>(src)] >= 0) {
        // Chain link: the producer's blocked lanes pass straight through.
        in.inputs[0] = blocked_reg[static_cast<size_t>(src)];
      } else {
        if (packed_of[static_cast<size_t>(src)] < 0) {
          FpInstr pk;
          pk.kind = FpInstr::Kind::kLayoutPack;
          pk.inputs = {src};
          pk.output = (*n_registers)++;
          pk.debug_name = "layout_pack";
          packed_of[static_cast<size_t>(src)] = pk.output;
          out.push_back(std::move(pk));
          out_algos.push_back(fpk::Algo::kAuto);
        }
        in.inputs[0] = packed_of[static_cast<size_t>(src)];
      }
      const int o = in.output;
      if (needs_unpack[static_cast<size_t>(o)]) {
        // Keep the ORIGINAL register id for the unpacked lanes so every
        // standard-layout consumer (and the program output) is untouched;
        // the blocked lanes live in a fresh register.
        in.output = (*n_registers)++;
        blocked_reg[static_cast<size_t>(o)] = in.output;
        out.push_back(std::move(in));
        out_algos.push_back(fpk::Algo::kBlocked);
        FpInstr up;
        up.kind = FpInstr::Kind::kLayoutUnpack;
        up.inputs = {blocked_reg[static_cast<size_t>(o)]};
        up.output = o;
        up.debug_name = "layout_unpack";
        out.push_back(std::move(up));
        out_algos.push_back(fpk::Algo::kAuto);
      } else {
        blocked_reg[static_cast<size_t>(o)] = o;
        out.push_back(std::move(in));
        out_algos.push_back(fpk::Algo::kBlocked);
      }
    } else {
      out.push_back(std::move(in));
      out_algos.push_back(algo);
    }
  }
  stream = std::move(out);
  algos = std::move(out_algos);
}

}  // namespace tqt
