// Kernel autotuner implementation (see autotune.h for the contract).
//
// Measurement strategy: every candidate runs through detail::run_fused — the
// exact dispatch the executor uses — on tuner-owned synthetic buffers filled
// from the planned register bounds (deterministic LCG, ~1/3 zeros so the
// zero-run skip paths see representative density). Timing is best-of-3 blocks
// of `reps` runs, reps sized so one block touches ~kTuneTargetOps multiply-
// accumulates; the best block is robust against scheduler noise and the
// measure-once cache makes a given process's selections stable. Ties break
// toward the lower Algo enum value, so identical measurements always produce
// identical programs.
//
// The blocked-layout decision is made over maximal CHAINS of capable
// instructions, not per instruction: pack/unpack transforms amortize across a
// chain (interior links hand the NC8HW8 register straight through), so the
// comparison is sum(t_blk) + t_pack(first) + t_unpack(last) against
// 0.95 * sum(t_std) — the 5% margin keeps near-ties on the simpler standard
// path.
#include "fixedpoint/autotune.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fixedpoint/kernels/kernels.h"
#include "observe/observe.h"

namespace tqt::autotune {
namespace {

// ---- Mode resolution -------------------------------------------------------

std::atomic<int> g_mode_override{-1};
std::atomic<int> g_forced_algo{-1};

Mode env_mode() {
  const char* e = std::getenv("TQT_AUTOTUNE");
  if (!e) return Mode::kOff;
  if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0) return Mode::kOn;
  if (std::strcmp(e, "2") == 0 || std::strcmp(e, "force") == 0) return Mode::kForce;
  return Mode::kOff;
}

// ---- Process shape cache ---------------------------------------------------

std::mutex& cache_mu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, TuneEntry>& shape_cache() {
  static std::unordered_map<std::string, TuneEntry> c;
  return c;
}

// ---- Hashing ---------------------------------------------------------------

struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void i64(int64_t v) { bytes(&v, sizeof v); }
  void i32(int32_t v) { bytes(&v, sizeof v); }
};

// ---- Synthetic probe inputs ------------------------------------------------

void fill_synth(void* p, int64_t n, IntWidth w, int64_t lo, int64_t hi) {
  if (hi < lo) { lo = -64; hi = 63; }
  uint32_t v = 20260809u;
  const bool zero_ok = lo <= 0 && 0 <= hi;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  for (int64_t i = 0; i < n; ++i) {
    v = (v * 1103515245u + 12345u) & 0x7fffffffu;
    int64_t val = lo + static_cast<int64_t>(v % span);
    if (zero_ok && v % 3 == 0) val = 0;
    switch (w) {
      case IntWidth::kI8: static_cast<int8_t*>(p)[i] = static_cast<int8_t>(val); break;
      case IntWidth::kI16: static_cast<int16_t*>(p)[i] = static_cast<int16_t>(val); break;
      case IntWidth::kI32: static_cast<int32_t*>(p)[i] = static_cast<int32_t>(val); break;
      default: static_cast<int64_t*>(p)[i] = val; break;
    }
  }
}

// ---- Timing ----------------------------------------------------------------

constexpr int64_t kTuneTargetOps = 8'000'000;
constexpr int kTimeBlocks = 3;

int reps_for(int64_t ops) {
  if (ops < 1) ops = 1;
  int64_t r = kTuneTargetOps / ops;
  if (r < 2) r = 2;
  if (r > 64) r = 64;
  return static_cast<int>(r);
}

/// Best-of-N blocks of `reps` runs; returns seconds per run. One untimed
/// warm-up run first grows scratch buffers and faults pages in.
template <typename F>
double time_probe(int reps, F&& fn) {
  fn();
  double best = 1e300;
  for (int b = 0; b < kTimeBlocks; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double per = std::chrono::duration<double>(t1 - t0).count() / reps;
    if (per < best) best = per;
  }
  return best;
}

// ---- Candidate enumeration -------------------------------------------------

/// Standard-layout candidates (never kGeneric — it cannot beat a registered
/// narrow kernel, so timing it would only slow tuning down; instructions whose
/// sole option is the generic fallback are not tunable).
void standard_candidates(const FpInstr& in, const ExecPlan::Const& c, IntWidth xw,
                         std::vector<fpk::Algo>& out) {
  out.clear();
  if (!c.acc_ok32 || c.width != IntWidth::kI8) return;
  const fpk::KernelSet& ks = fpk::active_kernels();
  if (in.kind == FpInstr::Kind::kDepthwiseFused) {
    if (xw == IntWidth::kI8 && ks.depthwise_s8_epi) out.push_back(fpk::Algo::kDwDirect);
    if (xw == IntWidth::kI16 && ks.depthwise_s16_epi) out.push_back(fpk::Algo::kDwDirect);
    return;
  }
  if (xw == IntWidth::kI8) {
    if (ks.gemm_s8p16_epi && !c.b_pair16.empty()) out.push_back(fpk::Algo::kGemmPacked);
    if (ks.gemm_s8_epi) out.push_back(fpk::Algo::kGemmRaw);
    if (ks.gemm_s8n4_epi && !c.b_nib4.empty()) out.push_back(fpk::Algo::kGemmS4);
  } else if (xw == IntWidth::kI16) {
    if (ks.gemm_s16p16_epi && !c.b_pair16.empty()) out.push_back(fpk::Algo::kGemmPacked);
    if (ks.gemm_s16n4_epi && !c.b_nib4.empty()) out.push_back(fpk::Algo::kGemmS4);
  }
}

/// Whether the NC8HW8 blocked kernels can run this instruction at all.
bool blocked_capable(const FpInstr& in, const ExecPlan::Const& c, IntWidth xw) {
  if (!c.acc_ok32 || c.width != IntWidth::kI8) return false;
  if (xw != IntWidth::kI8) return false;
  // Per-channel epilogues index chan_shift by the logical channel; the
  // blocked kernels retire padded NC8HW8 lanes, so keep them off the table.
  if (!c.chan_shifts.empty()) return false;
  const fpk::KernelSet& ks = fpk::active_kernels();
  if (in.kind == FpInstr::Kind::kConv2dFused) return ks.conv_s8blk_epi != nullptr;
  if (in.kind == FpInstr::Kind::kDepthwiseFused) return ks.depthwise_s8blk_epi != nullptr;
  return false;
}

/// Multiply-accumulate count of one run (drives the rep count).
int64_t probe_ops(const FpInstr& in, int64_t yn) {
  switch (in.kind) {
    case FpInstr::Kind::kConv2dFused:
      return yn * in.const_shape[0] * in.const_shape[1] * in.const_shape[2];
    case FpInstr::Kind::kDepthwiseFused:
      return yn * in.const_shape[0] * in.const_shape[1];
    default:
      return yn * in.const_shape[0];
  }
}

/// Shape-class key: (op, widths, input shape incl. batch, weight shape,
/// geometry, kernel set, weight traits). Two instructions with equal keys
/// time identically, so they share one cache entry. The weight traits tag
/// (int4-packable, per-channel) keeps instructions with different candidate
/// sets or retire paths from sharing an entry.
std::string shape_key(const FpInstr& in, const ExecPlan::Const& c, const FpRegShape& xs,
                      IntWidth xw, IntWidth wy) {
  const char* op = in.kind == FpInstr::Kind::kDepthwiseFused ? "dw"
                   : in.kind == FpInstr::Kind::kDenseFused   ? "dense"
                                                             : "conv";
  char buf[256];
  char xdims[64];
  int off = 0;
  for (int d = 0; d < xs.rank; ++d) {
    off += std::snprintf(xdims + off, sizeof(xdims) - static_cast<size_t>(off),
                         d ? "x%lld" : "%lld", static_cast<long long>(xs.dims[d]));
  }
  char wdims[64];
  off = 0;
  for (size_t d = 0; d < in.const_shape.size(); ++d) {
    off += std::snprintf(wdims + off, sizeof(wdims) - static_cast<size_t>(off),
                         d ? "x%lld" : "%lld", static_cast<long long>(in.const_shape[d]));
  }
  std::snprintf(buf, sizeof buf, "%s|%s>%s|x%s|w%s|s%lldx%lld|p%lld.%lld.%lld.%lld|%s%s%s",
                op, to_string(xw), to_string(wy), xdims, wdims,
                static_cast<long long>(in.geom.stride_h),
                static_cast<long long>(in.geom.stride_w),
                static_cast<long long>(in.geom.pad_top),
                static_cast<long long>(in.geom.pad_bottom),
                static_cast<long long>(in.geom.pad_left),
                static_cast<long long>(in.geom.pad_right), fpk::active_kernels().name,
                c.b_nib4.empty() ? "" : "|w4", c.chan_shifts.empty() ? "" : "|pc");
  return buf;
}

/// Measure every candidate for one instruction and fill a TuneEntry.
TuneEntry measure_key(const FpInstr& in, const ExecPlan::Const& c, const FpRegShape& xs,
                      IntWidth xw, IntWidth wy, int64_t yn, int64_t in_lo, int64_t in_hi,
                      const std::vector<fpk::Algo>& cands, bool try_blocked,
                      observe::Counter& timed) {
  TuneEntry e;
  std::vector<unsigned char> scratch, acc;
  const int reps = reps_for(probe_ops(in, yn));

  // Standard-layout probe buffers (+32 bytes of A-operand slack).
  std::vector<unsigned char> x(static_cast<size_t>(xs.numel) * width_bytes(xw) + 32, 0);
  std::vector<unsigned char> y(static_cast<size_t>(yn) * width_bytes(wy) + 32, 0);
  fill_synth(x.data(), xs.numel, xw, in_lo, in_hi);

  double t_best = 1e300;
  fpk::Algo best = fpk::Algo::kGeneric;
  for (fpk::Algo a : cands) {
    const double t = time_probe(reps, [&] {
      detail::run_fused(in, c, a, x.data(), xs, xw, y.data(), wy, yn, scratch, acc);
    });
    timed.inc();
    if (t < t_best) {  // strict: ties keep the earlier (lower-enum) candidate
      t_best = t;
      best = a;
    }
  }
  e.winner = static_cast<int32_t>(best);
  e.t_std = t_best;

  if (try_blocked) {
    // A blocked probe needs the blocked weight packs the preliminary plan
    // does not carry yet, plus NC8HW8 copies of both activation buffers.
    ExecPlan::Const cb = c;
    int64_t yn_blk;
    if (in.kind == FpInstr::Kind::kDepthwiseFused) {
      cb.w_blk8 = fpk::pack_dw_wblk8(c.i8.data(), in.const_shape[0], in.const_shape[1],
                                     in.const_shape[2]);
      const int64_t oh = in.geom.out_h(xs.dims[1]), ow = in.geom.out_w(xs.dims[2]);
      yn_blk = xs.dims[0] * oh * ow * fpk::blocked_c(in.const_shape[2]);
    } else {
      cb.b_blk16 = fpk::pack_conv_wblk16(c.i8.data(), in.const_shape[0], in.const_shape[1],
                                         in.const_shape[2], in.const_shape[3]);
      const int64_t oh = in.geom.out_h(xs.dims[1]), ow = in.geom.out_w(xs.dims[2]);
      yn_blk = xs.dims[0] * oh * ow * fpk::blocked_c(in.const_shape[3]);
    }
    const int64_t xn_blk = xs.dims[0] * xs.dims[1] * xs.dims[2] * fpk::blocked_c(xs.dims[3]);
    std::vector<unsigned char> xb(static_cast<size_t>(xn_blk) + 32, 0);
    std::vector<unsigned char> yb(static_cast<size_t>(yn_blk) * width_bytes(wy) + 32, 0);
    detail::layout_pack(reinterpret_cast<const int8_t*>(x.data()), xs,
                        reinterpret_cast<int8_t*>(xb.data()));
    e.t_blk = time_probe(reps, [&] {
      detail::run_fused(in, cb, fpk::Algo::kBlocked, xb.data(), xs, xw, yb.data(), wy,
                        yn_blk, scratch, acc);
    });
    timed.inc();
    const int pack_reps = reps_for(xs.numel);
    e.t_pack = time_probe(pack_reps, [&] {
      detail::layout_pack(reinterpret_cast<const int8_t*>(x.data()), xs,
                          reinterpret_cast<int8_t*>(xb.data()));
    });
    FpRegShape ys{};
    ys.rank = 4;
    ys.dims[0] = xs.dims[0];
    ys.dims[1] = in.geom.out_h(xs.dims[1]);
    ys.dims[2] = in.geom.out_w(xs.dims[2]);
    ys.dims[3] = in.kind == FpInstr::Kind::kDepthwiseFused ? in.const_shape[2]
                                                           : in.const_shape[3];
    ys.numel = ys.dims[0] * ys.dims[1] * ys.dims[2] * ys.dims[3];
    e.t_unpack = time_probe(reps_for(ys.numel), [&] {
      detail::layout_unpack(yb.data(), wy, ys, y.data());
    });
  }
  return e;
}

}  // namespace

Mode mode() {
  const int o = g_mode_override.load(std::memory_order_relaxed);
  if (o == 0) return Mode::kOff;
  if (o == 1) return Mode::kOn;
  if (o == 2) return Mode::kForce;
  return env_mode();
}

void set_mode(int m) { g_mode_override.store(m, std::memory_order_relaxed); }

void set_forced_algo_for_test(int algo) {
  g_forced_algo.store(algo, std::memory_order_relaxed);
}

void reset_for_test() {
  g_forced_algo.store(-1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(cache_mu());
  shape_cache().clear();
}

uint64_t hash_program(const std::vector<FpInstr>& instrs, int n_registers,
                      int input_register, int output_register) {
  Fnv f;
  f.i32(n_registers);
  f.i32(input_register);
  f.i32(output_register);
  for (const FpInstr& in : instrs) {
    f.i32(static_cast<int32_t>(in.kind));
    f.i32(static_cast<int32_t>(in.inputs.size()));
    for (int r : in.inputs) f.i32(r);
    f.i32(in.output);
    f.i64(in.geom.kh);
    f.i64(in.geom.kw);
    f.i64(in.geom.stride_h);
    f.i64(in.geom.stride_w);
    f.i64(in.geom.pad_top);
    f.i64(in.geom.pad_bottom);
    f.i64(in.geom.pad_left);
    f.i64(in.geom.pad_right);
    f.i32(static_cast<int32_t>(in.const_data.size()));
    if (!in.const_data.empty())
      f.bytes(in.const_data.data(), in.const_data.size() * sizeof(int64_t));
    f.i32(static_cast<int32_t>(in.const_shape.size()));
    for (int64_t d : in.const_shape) f.i64(d);
    f.i32(in.const_exponent);
    f.i32(in.out_exponent);
    f.i64(in.clamp_lo);
    f.i64(in.clamp_hi);
    f.i64(in.alpha_q);
    f.i32(in.alpha_exponent);
    f.i32(static_cast<int32_t>(in.epi_data.size()));
    if (!in.epi_data.empty())
      f.bytes(in.epi_data.data(), in.epi_data.size() * sizeof(int64_t));
    f.i32(static_cast<int32_t>(in.bias_data.size()));
    if (!in.bias_data.empty())
      f.bytes(in.bias_data.data(), in.bias_data.size() * sizeof(int64_t));
    f.i32(static_cast<int32_t>(in.chan_data.size()));
    if (!in.chan_data.empty())
      f.bytes(in.chan_data.data(), in.chan_data.size() * sizeof(int64_t));
    // debug_name deliberately excluded: renames must not invalidate a tune.
  }
  return f.h;
}

uint64_t cpu_feature_hash() {
  Fnv f;
  const char* name = fpk::active_kernels().name;
  f.bytes(name, std::strlen(name));
  f.i32(fpk::avx2_kernels() != nullptr ? 1 : 0);
  return f.h;
}

bool save_sidecar(const std::string& path, const ProgramTuning& tuning) {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (!fp) return false;
  bool ok = true;
  const auto put = [&](const void* p, size_t n) {
    if (ok && std::fwrite(p, 1, n, fp) != n) ok = false;
  };
  put("TQTT", 4);
  const uint32_t ver = 1;
  put(&ver, 4);
  const uint64_t ph = tuning.program_hash;
  put(&ph, 8);
  const uint64_t ch = cpu_feature_hash();
  put(&ch, 8);
  const uint32_t n = static_cast<uint32_t>(tuning.entries.size());
  put(&n, 4);
  for (const auto& [key, e] : tuning.entries) {
    const uint32_t klen = static_cast<uint32_t>(key.size());
    put(&klen, 4);
    put(key.data(), key.size());
    put(&e.winner, 4);
    put(&e.t_std, 8);
    put(&e.t_blk, 8);
    put(&e.t_pack, 8);
    put(&e.t_unpack, 8);
  }
  if (std::fclose(fp) != 0) ok = false;
  return ok;
}

bool load_sidecar(const std::string& path, uint64_t program_hash, uint64_t cpu_hash,
                  std::vector<std::pair<std::string, TuneEntry>>& out) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) return false;
  std::vector<std::pair<std::string, TuneEntry>> got;
  bool ok = true;
  const auto get = [&](void* p, size_t n) {
    if (ok && std::fread(p, 1, n, fp) != n) ok = false;
  };
  char magic[4] = {};
  get(magic, 4);
  if (ok && std::memcmp(magic, "TQTT", 4) != 0) ok = false;
  uint32_t ver = 0;
  get(&ver, 4);
  if (ok && ver != 1) ok = false;
  uint64_t ph = 0, ch = 0;
  get(&ph, 8);
  get(&ch, 8);
  if (ok && (ph != program_hash || ch != cpu_hash)) ok = false;
  uint32_t n = 0;
  get(&n, 4);
  if (ok && n > 100000) ok = false;
  for (uint32_t i = 0; ok && i < n; ++i) {
    uint32_t klen = 0;
    get(&klen, 4);
    if (ok && klen > 4096) ok = false;
    if (!ok) break;
    std::string key(klen, '\0');
    get(key.data(), klen);
    TuneEntry e;
    get(&e.winner, 4);
    get(&e.t_std, 8);
    get(&e.t_blk, 8);
    get(&e.t_pack, 8);
    get(&e.t_unpack, 8);
    if (ok && (e.winner < 0 || e.winner > static_cast<int32_t>(fpk::kAlgoMax)))
      ok = false;
    if (ok) got.emplace_back(std::move(key), e);
  }
  std::fclose(fp);
  if (!ok) return false;
  out = std::move(got);
  return true;
}

std::shared_ptr<const ProgramTuning> tune_program(const std::vector<FpInstr>& instrs,
                                                  int n_registers, int input_register,
                                                  int output_register, const ExecPlan& plan,
                                                  const std::string& sidecar_path) {
  auto& m = observe::MetricsRegistry::global();
  auto& c_timed = m.counter("engine.autotune.candidates_timed");
  auto& c_cache = m.counter("engine.autotune.cache_hits");
  auto& c_retune = m.counter("engine.autotune.retunes");
  auto& c_sidecar = m.counter("engine.autotune.sidecar_loads");

  const Shape nominal = fp_nominal_input_shape(instrs);
  std::vector<FpRegShape> shapes;
  infer_register_shapes(instrs, n_registers, input_register, nominal, shapes);

  const int n = static_cast<int>(instrs.size());
  std::vector<std::vector<fpk::Algo>> cands(static_cast<size_t>(n));
  std::vector<char> capable(static_cast<size_t>(n), 0);  // blocked-capable
  std::vector<std::string> keys(static_cast<size_t>(n));
  bool any = false;
  for (int i = 0; i < n; ++i) {
    const FpInstr& in = instrs[i];
    if (!is_fused_kind(in.kind)) continue;
    const IntWidth xw = plan.regs[static_cast<size_t>(in.inputs[0])].width;
    standard_candidates(in, plan.consts[static_cast<size_t>(i)], xw, cands[static_cast<size_t>(i)]);
    capable[static_cast<size_t>(i)] =
        blocked_capable(in, plan.consts[static_cast<size_t>(i)], xw) ? 1 : 0;
    // Tunable = a real choice exists: >= 2 standard candidates, or a blocked
    // alternative to >= 1 standard candidate.
    const bool tunable = cands[static_cast<size_t>(i)].size() >= 2 ||
                         (capable[static_cast<size_t>(i)] && !cands[static_cast<size_t>(i)].empty());
    if (!tunable) {
      cands[static_cast<size_t>(i)].clear();
      capable[static_cast<size_t>(i)] = 0;
      continue;
    }
    const IntWidth wy = plan.regs[static_cast<size_t>(in.output)].width;
    keys[static_cast<size_t>(i)] = shape_key(in, plan.consts[static_cast<size_t>(i)],
                                             shapes[static_cast<size_t>(in.inputs[0])], xw, wy);
    any = true;
  }
  if (!any) return nullptr;

  auto tuning = std::make_shared<ProgramTuning>();
  tuning->algos.assign(static_cast<size_t>(n), fpk::Algo::kAuto);
  tuning->program_hash = hash_program(instrs, n_registers, input_register, output_register);

  // Forced-algo test hook: no measurement, no cache, no sidecar.
  const int forced = g_forced_algo.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const fpk::Algo fa = static_cast<fpk::Algo>(forced);
    for (int i = 0; i < n; ++i) {
      const bool can =
          fa == fpk::Algo::kBlocked
              ? capable[static_cast<size_t>(i)] != 0
              : std::find(cands[static_cast<size_t>(i)].begin(), cands[static_cast<size_t>(i)].end(),
                          fa) != cands[static_cast<size_t>(i)].end();
      if (!can) continue;
      tuning->algos[static_cast<size_t>(i)] = fa;
      ++tuning->tuned_instrs;
      if (fa == fpk::Algo::kBlocked) ++tuning->blocked_instrs;
      TuneEntry e;
      e.winner = forced;
      tuning->entries.emplace_back(keys[static_cast<size_t>(i)], e);
    }
    return tuning->tuned_instrs > 0 ? tuning : nullptr;
  }

  // Sidecar consultation (kOn only; kForce re-measures everything).
  std::unordered_map<std::string, TuneEntry> sidecar;
  if (!sidecar_path.empty() && mode() != Mode::kForce) {
    std::vector<std::pair<std::string, TuneEntry>> loaded;
    if (load_sidecar(sidecar_path, tuning->program_hash, cpu_feature_hash(), loaded)) {
      for (auto& [k, e] : loaded) sidecar.emplace(std::move(k), e);
    }
  }

  // Resolve every key: process cache, then sidecar, then measure. The mutex
  // is held across measurement so concurrent finalizes (serving hot-swap)
  // measure each key exactly once.
  std::unordered_map<std::string, TuneEntry> resolved;
  int measured_fresh = 0, from_sidecar = 0;
  {
    std::lock_guard<std::mutex> lk(cache_mu());
    auto& cache = shape_cache();
    for (int i = 0; i < n; ++i) {
      const std::string& key = keys[static_cast<size_t>(i)];
      if (key.empty() || resolved.count(key)) continue;
      if (mode() != Mode::kForce) {
        if (auto it = cache.find(key); it != cache.end()) {
          resolved.emplace(key, it->second);
          c_cache.inc();
          continue;
        }
        if (auto it = sidecar.find(key); it != sidecar.end()) {
          resolved.emplace(key, it->second);
          cache.emplace(key, it->second);
          c_sidecar.inc();
          ++from_sidecar;
          continue;
        }
      }
      const FpInstr& in = instrs[i];
      const int x = in.inputs[0];
      const IntWidth xw = plan.regs[static_cast<size_t>(x)].width;
      const IntWidth wy = plan.regs[static_cast<size_t>(in.output)].width;
      const TuneEntry e = measure_key(
          in, plan.consts[static_cast<size_t>(i)], shapes[static_cast<size_t>(x)], xw, wy,
          shapes[static_cast<size_t>(in.output)].numel, plan.regs[static_cast<size_t>(x)].lo,
          plan.regs[static_cast<size_t>(x)].hi, cands[static_cast<size_t>(i)],
          capable[static_cast<size_t>(i)] != 0, c_timed);
      resolved.emplace(key, e);
      cache[key] = e;
      ++measured_fresh;
      c_retune.inc();
    }
  }

  // Per-instruction standard winners.
  for (int i = 0; i < n; ++i) {
    if (keys[static_cast<size_t>(i)].empty()) continue;
    tuning->algos[static_cast<size_t>(i)] =
        static_cast<fpk::Algo>(resolved[keys[static_cast<size_t>(i)]].winner);
    ++tuning->tuned_instrs;
  }

  // Blocked-chain decision. A chain link exists when instruction i's output
  // feeds exactly instruction j's activation input (single use, int8, j also
  // capable); maximal chains are then accepted or rejected wholesale.
  std::vector<int> uses(static_cast<size_t>(n_registers), 0);
  for (const FpInstr& in : instrs)
    for (int r : in.inputs) ++uses[static_cast<size_t>(r)];
  std::vector<int> next(static_cast<size_t>(n), -1), prev(static_cast<size_t>(n), -1);
  std::unordered_map<int, int> producer;  // register -> capable producer idx
  for (int i = 0; i < n; ++i)
    if (capable[static_cast<size_t>(i)] && resolved.count(keys[static_cast<size_t>(i)]) &&
        resolved[keys[static_cast<size_t>(i)]].t_blk > 0)
      producer[instrs[static_cast<size_t>(i)].output] = i;
    else
      capable[static_cast<size_t>(i)] = 0;  // no usable blocked measurement
  for (int j = 0; j < n; ++j) {
    if (!capable[static_cast<size_t>(j)]) continue;
    const int r = instrs[static_cast<size_t>(j)].inputs[0];
    auto it = producer.find(r);
    if (it == producer.end()) continue;
    const int i = it->second;
    if (r == output_register || uses[static_cast<size_t>(r)] != 1) continue;
    if (plan.regs[static_cast<size_t>(r)].width != IntWidth::kI8) continue;
    next[static_cast<size_t>(i)] = j;
    prev[static_cast<size_t>(j)] = i;
  }
  for (int i = 0; i < n; ++i) {
    if (!capable[static_cast<size_t>(i)] || prev[static_cast<size_t>(i)] != -1) continue;
    std::vector<int> chain;
    for (int k = i; k != -1; k = next[static_cast<size_t>(k)]) chain.push_back(k);
    double t_std = 0, t_blk = 0;
    for (int k : chain) {
      const TuneEntry& e = resolved[keys[static_cast<size_t>(k)]];
      t_std += e.t_std;
      t_blk += e.t_blk;
    }
    t_blk += resolved[keys[static_cast<size_t>(chain.front())]].t_pack;
    t_blk += resolved[keys[static_cast<size_t>(chain.back())]].t_unpack;
    if (t_blk < 0.95 * t_std) {
      for (int k : chain) {
        tuning->algos[static_cast<size_t>(k)] = fpk::Algo::kBlocked;
        ++tuning->blocked_instrs;
      }
    }
  }

  // Entries in instruction order, deduped by key (sidecar payload).
  {
    std::unordered_map<std::string, bool> seen;
    for (int i = 0; i < n; ++i) {
      const std::string& key = keys[static_cast<size_t>(i)];
      if (key.empty() || seen.count(key)) continue;
      seen.emplace(key, true);
      tuning->entries.emplace_back(key, resolved[key]);
    }
  }
  tuning->from_sidecar = measured_fresh == 0 && from_sidecar > 0;

  m.gauge("engine.autotune.tuned_instrs").set(tuning->tuned_instrs);
  m.gauge("engine.autotune.blocked_selected").set(tuning->blocked_instrs);
  return tuning;
}

std::vector<ExplainRow> explain_kernels(const FixedPointProgram& prog) {
  const ExecPlan& plan = prog.plan();
  const std::vector<FpInstr>& stream =
      plan.instrs.empty() ? prog.instructions() : plan.instrs;
  const Shape nominal = fp_nominal_input_shape(prog.instructions());
  std::vector<FpRegShape> shapes;
  infer_register_shapes(stream, static_cast<int>(plan.regs.size()), prog.input_reg(),
                        nominal, shapes);
  std::vector<ExplainRow> rows;
  rows.reserve(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    const FpInstr& in = stream[i];
    ExplainRow row;
    row.name = in.debug_name;
    row.kind = to_string(in.kind);
    if (is_fused_kind(in.kind)) {
      const IntWidth xw = plan.regs[static_cast<size_t>(in.inputs[0])].width;
      const IntWidth wy = plan.regs[static_cast<size_t>(in.output)].width;
      const fpk::Algo planned = i < plan.algos.size() ? plan.algos[i] : fpk::Algo::kAuto;
      row.shape = shape_key(in, plan.consts[i], shapes[static_cast<size_t>(in.inputs[0])],
                            xw, wy);
      row.algo = fpk::algo_name(
          detail::resolve_fused_algo(in, plan.consts[i], xw, planned));
      row.tuned = planned != fpk::Algo::kAuto;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tqt::autotune
