#include "fixedpoint/plan.h"

#include <algorithm>

#include <limits>
#include <stdexcept>
#include <string>

#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/rescale.h"

namespace tqt {

const char* to_string(IntWidth w) {
  switch (w) {
    case IntWidth::kI8: return "i8";
    case IntWidth::kI16: return "i16";
    case IntWidth::kI32: return "i32";
    case IntWidth::kI64: return "i64";
  }
  return "?";
}

namespace {

constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();

// Saturating int64 arithmetic for the bound propagation. Bounds that blow
// past int64 simply pin the register at the (always safe) kI64 width.
int64_t sat_add(int64_t a, int64_t b) {
  __int128 r = static_cast<__int128>(a) + b;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

int64_t sat_mul(int64_t a, int64_t b) {
  __int128 r = static_cast<__int128>(a) * b;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

int64_t sat_shl(int64_t a, int shift) {
  if (a == 0) return 0;
  __int128 r = static_cast<__int128>(a) << shift;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

IntWidth width_for_bounds(int64_t lo, int64_t hi) {
  if (lo >= std::numeric_limits<int8_t>::min() && hi <= std::numeric_limits<int8_t>::max()) {
    return IntWidth::kI8;
  }
  if (lo >= std::numeric_limits<int16_t>::min() && hi <= std::numeric_limits<int16_t>::max()) {
    return IntWidth::kI16;
  }
  if (lo >= std::numeric_limits<int32_t>::min() && hi <= std::numeric_limits<int32_t>::max()) {
    return IntWidth::kI32;
  }
  return IntWidth::kI64;
}

IntWidth widen_to(IntWidth w, IntWidth at_least) {
  return static_cast<uint8_t>(w) < static_cast<uint8_t>(at_least) ? at_least : w;
}

/// Largest per-output-channel sum of |w| for a matmul-family weight tensor:
/// the tight accumulator bound is max_o(sum_k |w[k][o]|) * max|x|. The
/// constant layouts are (kh, kw, cin, cout) for conv, (k, m) for dense —
/// both row-major with the output channel innermost — and (kh, kw, c) for
/// depthwise where each channel accumulates only its own taps.
int64_t max_abs_col_sum(const std::vector<int64_t>& w, int64_t cols) {
  if (cols <= 0 || w.empty()) return 0;
  std::vector<int64_t> sums(static_cast<size_t>(cols), 0);
  for (size_t i = 0; i < w.size(); ++i) {
    int64_t& s = sums[i % static_cast<size_t>(cols)];
    s = sat_add(s, w[i] < 0 ? -w[i] : w[i]);
  }
  return *std::max_element(sums.begin(), sums.end());
}

struct Interval {
  int64_t lo = 0, hi = 0;
  int64_t abs_max() const { return std::max(lo < 0 ? sat_mul(lo, -1) : lo, hi); }
};

}  // namespace

ExecPlan build_exec_plan(const std::vector<FpInstr>& instrs, int n_registers,
                         int input_register, int output_register) {
  ExecPlan plan;
  plan.regs.assign(static_cast<size_t>(n_registers), ExecPlan::Reg{});
  plan.consts.assign(instrs.size(), ExecPlan::Const{});

  // ---- Pass 1: value bounds -> storage widths --------------------------
  // Exponents are static: replay the same propagation the compiler and the
  // reference interpreter perform, so the typed executor never has to track
  // scales at run time.
  std::vector<Interval> iv(static_cast<size_t>(n_registers));
  std::vector<int> rex(static_cast<size_t>(n_registers), 0);
  auto in_iv = [&](const FpInstr& in, int i) -> Interval& {
    return iv[static_cast<size_t>(in.inputs[static_cast<size_t>(i)])];
  };
  auto in_exp = [&](const FpInstr& in) {
    return in.inputs.empty() ? 0 : rex[static_cast<size_t>(in.inputs[0])];
  };
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    Interval out;
    IntWidth min_width = IntWidth::kI8;
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
      case FpInstr::Kind::kRequant:
        out = {in.clamp_lo, in.clamp_hi};
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDense:
      case FpInstr::Kind::kDepthwise: {
        const int64_t cols = in.kind == FpInstr::Kind::kDense
                                 ? in.const_shape[1]
                                 : in.const_shape.back();
        const int64_t wsum = max_abs_col_sum(in.const_data, cols);
        const int64_t bound = sat_mul(wsum, in_iv(in, 0).abs_max());
        out = {sat_mul(bound, -1), bound};
        // Accumulate natively in the GEMM kernels' int32 (or int64).
        min_width = IntWidth::kI32;
        break;
      }
      case FpInstr::Kind::kBiasAdd: {
        int64_t bmin = 0, bmax = 0;
        if (!in.const_data.empty()) {
          const auto [mn, mx] = std::minmax_element(in.const_data.begin(), in.const_data.end());
          bmin = *mn;
          bmax = *mx;
        }
        out = {sat_add(in_iv(in, 0).lo, bmin), sat_add(in_iv(in, 0).hi, bmax)};
        break;
      }
      case FpInstr::Kind::kRelu:
        out = {std::max<int64_t>(in_iv(in, 0).lo, 0), std::max<int64_t>(in_iv(in, 0).hi, 0)};
        break;
      case FpInstr::Kind::kRelu6:
        out = {fp::saturate(in_iv(in, 0).lo, in.clamp_lo, in.clamp_hi),
               fp::saturate(in_iv(in, 0).hi, in.clamp_lo, in.clamp_hi)};
        break;
      case FpInstr::Kind::kLeakyRelu: {
        const int lift = -in.alpha_exponent;
        // f(x) = max(x << lift, x * alpha_q) is monotone in x (both branches
        // increase with x, alpha_q > 0), so the output interval is
        // [f(lo), f(hi)].
        auto f = [&](int64_t x) {
          return std::max(sat_shl(x, lift), sat_mul(x, in.alpha_q));
        };
        out = {f(in_iv(in, 0).lo), f(in_iv(in, 0).hi)};
        break;
      }
      case FpInstr::Kind::kMaxPool:
        // An all-padding window yields 0, so 0 joins the interval.
        out = {std::min<int64_t>(in_iv(in, 0).lo, 0), std::max<int64_t>(in_iv(in, 0).hi, 0)};
        break;
      case FpInstr::Kind::kEltwiseAdd:
        out = {sat_add(in_iv(in, 0).lo, in_iv(in, 1).lo),
               sat_add(in_iv(in, 0).hi, in_iv(in, 1).hi)};
        break;
      case FpInstr::Kind::kConcat: {
        out = in_iv(in, 0);
        for (size_t i = 1; i < in.inputs.size(); ++i) {
          out.lo = std::min(out.lo, in_iv(in, static_cast<int>(i)).lo);
          out.hi = std::max(out.hi, in_iv(in, static_cast<int>(i)).hi);
        }
        break;
      }
      case FpInstr::Kind::kFlatten:
        out = in_iv(in, 0);
        break;
    }
    int out_exp = in_exp(in);
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
      case FpInstr::Kind::kRequant:
        out_exp = in.out_exponent;
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDense:
      case FpInstr::Kind::kDepthwise:
        out_exp = in_exp(in) + in.const_exponent;
        break;
      case FpInstr::Kind::kLeakyRelu:
        out_exp = in_exp(in) + in.alpha_exponent;
        break;
      default:
        break;  // exponent passes through
    }
    rex[static_cast<size_t>(in.output)] = out_exp;

    iv[static_cast<size_t>(in.output)] = out;
    ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(in.output)];
    reg.lo = out.lo;
    reg.hi = out.hi;
    reg.exponent = out_exp;
    reg.width = widen_to(width_for_bounds(out.lo, out.hi), min_width);

    if (in.kind == FpInstr::Kind::kConv2d) plan.needs_scratch = true;

    // ---- Typed weight constants for the matmul family ------------------
    if (in.kind == FpInstr::Kind::kConv2d || in.kind == FpInstr::Kind::kDense ||
        in.kind == FpInstr::Kind::kDepthwise) {
      int64_t wmin = 0, wmax = 0;
      if (!in.const_data.empty()) {
        const auto [mn, mx] = std::minmax_element(in.const_data.begin(), in.const_data.end());
        wmin = *mn;
        wmax = *mx;
      }
      ExecPlan::Const& c = plan.consts[idx];
      c.width = width_for_bounds(wmin, wmax);
      switch (c.width) {
        case IntWidth::kI8:
          c.i8.assign(in.const_data.begin(), in.const_data.end());
          // Conv/dense weights are the GEMM B operand; pre-pack the
          // k-pair-interleaved int16 copy the vpmaddwd kernels consume.
          if (in.kind != FpInstr::Kind::kDepthwise) {
            const int64_t n = in.const_shape[in.kind == FpInstr::Kind::kDense ? 1 : 3];
            if (n > 0) {
              c.b_pair16 = fpk::pack_b_pair16(
                  c.i8.data(), static_cast<int64_t>(c.i8.size()) / n, n);
            }
          }
          break;
        case IntWidth::kI16:
          c.i16.assign(in.const_data.begin(), in.const_data.end());
          break;
        case IntWidth::kI32:
          c.i32.assign(in.const_data.begin(), in.const_data.end());
          break;
        case IntWidth::kI64:
          break;  // read from instr.const_data directly
      }
    }
  }

  // ---- Pass 2: liveness -> arena slots ---------------------------------
  std::vector<int> last_use(static_cast<size_t>(n_registers), -1);
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    for (int r : instrs[idx].inputs) last_use[static_cast<size_t>(r)] = static_cast<int>(idx);
  }
  if (output_register >= 0) {
    last_use[static_cast<size_t>(output_register)] =
        static_cast<int>(instrs.size());  // live past the end
  }

  std::vector<int> free_slots;
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    // Assign the output a slot no live register holds (an instruction's
    // output must never alias an input it is still reading).
    ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(in.output)];
    if (free_slots.empty()) {
      reg.slot = plan.n_slots++;
    } else {
      reg.slot = free_slots.back();
      free_slots.pop_back();
    }
    // Inputs that die here release their slots for the NEXT instruction.
    for (int r : in.inputs) {
      if (r == input_register) continue;  // float input: no slot
      if (last_use[static_cast<size_t>(r)] == static_cast<int>(idx)) {
        const int s = plan.regs[static_cast<size_t>(r)].slot;
        if (s >= 0) free_slots.push_back(s);
      }
    }
    // An output nothing ever reads (cannot happen for compiled graphs, but
    // harmless): release immediately.
    if (last_use[static_cast<size_t>(in.output)] < 0 && in.output != output_register) {
      free_slots.push_back(reg.slot);
    }
  }
  return plan;
}

void infer_register_shapes(const std::vector<FpInstr>& instrs, int n_registers,
                           int input_register, const Shape& input_shape,
                           std::vector<FpRegShape>& out) {
  if (static_cast<int>(input_shape.size()) > 4) {
    throw std::invalid_argument("fp exec: input rank > 4 unsupported");
  }
  out.resize(static_cast<size_t>(n_registers));
  auto set_shape = [&](int reg, const FpRegShape& s) { out[static_cast<size_t>(reg)] = s; };

  FpRegShape in_s;
  in_s.rank = static_cast<int>(input_shape.size());
  in_s.numel = 1;
  for (int i = 0; i < in_s.rank; ++i) {
    in_s.dims[i] = input_shape[static_cast<size_t>(i)];
    in_s.numel *= in_s.dims[i];
  }
  if (input_register >= 0) set_shape(input_register, in_s);

  for (const FpInstr& in : instrs) {
    const FpRegShape& x = out[static_cast<size_t>(in.inputs.empty() ? in.output : in.inputs[0])];
    FpRegShape y = x;
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
        y = in_s;
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDepthwise:
      case FpInstr::Kind::kMaxPool: {
        y.rank = 4;
        y.dims[0] = x.dims[0];
        y.dims[1] = in.geom.out_h(x.dims[1]);
        y.dims[2] = in.geom.out_w(x.dims[2]);
        y.dims[3] = in.kind == FpInstr::Kind::kConv2d ? in.const_shape[3] : x.dims[3];
        y.numel = y.dims[0] * y.dims[1] * y.dims[2] * y.dims[3];
        break;
      }
      case FpInstr::Kind::kDense:
        y.rank = 2;
        y.dims[0] = x.dims[0];
        y.dims[1] = in.const_shape[1];
        y.dims[2] = y.dims[3] = 0;
        y.numel = y.dims[0] * y.dims[1];
        break;
      case FpInstr::Kind::kConcat: {
        int64_t total_c = 0;
        for (int r : in.inputs) {
          const FpRegShape& s = out[static_cast<size_t>(r)];
          total_c += s.dims[s.rank - 1];
        }
        y.dims[y.rank - 1] = total_c;
        y.numel = 1;
        for (int i = 0; i < y.rank; ++i) y.numel *= y.dims[i];
        break;
      }
      case FpInstr::Kind::kFlatten:
        y.rank = 2;
        y.dims[1] = x.numel / x.dims[0];
        y.dims[2] = y.dims[3] = 0;
        y.numel = x.numel;
        break;
      default:  // elementwise: shape passes through
        break;
    }
    set_shape(in.output, y);
  }
}

TrafficEstimate estimate_traffic(const FixedPointProgram& prog, const Shape& input_shape) {
  const ExecPlan& plan = prog.plan();
  std::vector<FpRegShape> shapes;
  int input_reg = -1;
  for (const FpInstr& in : prog.instructions()) {
    if (in.kind == FpInstr::Kind::kQuantizeInput) input_reg = in.inputs[0];
  }
  infer_register_shapes(prog.instructions(), prog.register_count(), input_reg, input_shape,
                        shapes);

  TrafficEstimate t;
  const auto& instrs = prog.instructions();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    const FpRegShape& y = shapes[static_cast<size_t>(in.output)];
    // Writes.
    t.typed_bytes += y.numel * width_bytes(plan.regs[static_cast<size_t>(in.output)].width);
    t.reference_bytes += y.numel * 8;
    // Activation reads (the float input counts as 4 bytes/lane for both).
    for (int r : in.inputs) {
      const FpRegShape& s = shapes[static_cast<size_t>(r)];
      if (r == input_reg) {
        t.typed_bytes += s.numel * 4;
        t.reference_bytes += s.numel * 4;
      } else {
        t.typed_bytes += s.numel * width_bytes(plan.regs[static_cast<size_t>(r)].width);
        t.reference_bytes += s.numel * 8;
      }
    }
    // Constant reads.
    const int64_t cn = static_cast<int64_t>(in.const_data.size());
    t.typed_bytes += cn * width_bytes(plan.consts[idx].width);
    t.reference_bytes += cn * 8;
  }
  return t;
}

const ExecPlan& FixedPointProgram::plan() const {
  if (!plan_) {
    throw std::logic_error("fixed-point program has no execution plan (not finalized)");
  }
  return *plan_;
}

void FixedPointProgram::finalize() {
  plan_ = std::make_shared<const ExecPlan>(
      build_exec_plan(instrs_, n_registers, input_register, output_register));
}

}  // namespace tqt
