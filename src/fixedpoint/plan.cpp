#include "fixedpoint/plan.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "fixedpoint/autotune.h"
#include "fixedpoint/fuse.h"
#include "fixedpoint/kernels/kernels.h"
#include "fixedpoint/rescale.h"
#include "observe/observe.h"

namespace tqt {

const char* to_string(IntWidth w) {
  switch (w) {
    case IntWidth::kI8: return "i8";
    case IntWidth::kI16: return "i16";
    case IntWidth::kI32: return "i32";
    case IntWidth::kI64: return "i64";
  }
  return "?";
}

namespace {

constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();

// Saturating int64 arithmetic for the bound propagation. Bounds that blow
// past int64 simply pin the register at the (always safe) kI64 width.
int64_t sat_add(int64_t a, int64_t b) {
  __int128 r = static_cast<__int128>(a) + b;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

int64_t sat_mul(int64_t a, int64_t b) {
  __int128 r = static_cast<__int128>(a) * b;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

int64_t sat_shl(int64_t a, int shift) {
  if (a == 0) return 0;
  __int128 r = static_cast<__int128>(a) << shift;
  if (r > kI64Max) return kI64Max;
  if (r < kI64Min) return kI64Min;
  return static_cast<int64_t>(r);
}

IntWidth width_for_bounds(int64_t lo, int64_t hi) {
  if (lo >= std::numeric_limits<int8_t>::min() && hi <= std::numeric_limits<int8_t>::max()) {
    return IntWidth::kI8;
  }
  if (lo >= std::numeric_limits<int16_t>::min() && hi <= std::numeric_limits<int16_t>::max()) {
    return IntWidth::kI16;
  }
  if (lo >= std::numeric_limits<int32_t>::min() && hi <= std::numeric_limits<int32_t>::max()) {
    return IntWidth::kI32;
  }
  return IntWidth::kI64;
}

IntWidth widen_to(IntWidth w, IntWidth at_least) {
  return static_cast<uint8_t>(w) < static_cast<uint8_t>(at_least) ? at_least : w;
}

/// Largest per-output-channel sum of |w| for a matmul-family weight tensor:
/// the tight accumulator bound is max_o(sum_k |w[k][o]|) * max|x|. The
/// constant layouts are (kh, kw, cin, cout) for conv, (k, m) for dense —
/// both row-major with the output channel innermost — and (kh, kw, c) for
/// depthwise where each channel accumulates only its own taps.
int64_t max_abs_col_sum(const std::vector<int64_t>& w, int64_t cols) {
  if (cols <= 0 || w.empty()) return 0;
  std::vector<int64_t> sums(static_cast<size_t>(cols), 0);
  for (size_t i = 0; i < w.size(); ++i) {
    int64_t& s = sums[i % static_cast<size_t>(cols)];
    s = sat_add(s, w[i] < 0 ? -w[i] : w[i]);
  }
  return *std::max_element(sums.begin(), sums.end());
}

struct Interval {
  int64_t lo = 0, hi = 0;
  int64_t abs_max() const { return std::max(lo < 0 ? sat_mul(lo, -1) : lo, hi); }
};

/// Weight columns of a matmul-family constant (the per-output-channel count
/// max_abs_col_sum folds over): (k, m) dense, (kh, kw, cin, cout) conv,
/// (kh, kw, c) depthwise.
int64_t weight_cols(const FpInstr& in) {
  return base_kind_of(in.kind) == FpInstr::Kind::kDense ? in.const_shape[1]
                                                        : in.const_shape.back();
}

/// Replay a fused instruction's epilogue over the accumulator interval,
/// exactly mirroring what each absorbed instruction's interval rule would
/// have produced. Also yields the final exponent.
Interval replay_epi_interval(const FpInstr& in, Interval acc, int acc_exp, int* out_exp) {
  int64_t bmin = 0, bmax = 0;
  if (!in.bias_data.empty()) {
    const auto [mn, mx] = std::minmax_element(in.bias_data.begin(), in.bias_data.end());
    bmin = *mn;
    bmax = *mx;
  }
  Interval cur = acc;
  int e = acc_exp;
  for (int s = 0; s < epi_step_count(in); ++s) {
    const FpEpiStep stp = epi_step(in, s);
    switch (static_cast<FpInstr::EpiOp>(stp.op)) {
      case FpInstr::EpiOp::kRequant:
        cur = {stp.b, stp.c};
        e = static_cast<int>(stp.a);
        break;
      case FpInstr::EpiOp::kBias:
        cur = {sat_add(cur.lo, bmin), sat_add(cur.hi, bmax)};
        break;
      case FpInstr::EpiOp::kRelu:
        cur = {std::max<int64_t>(cur.lo, 0), std::max<int64_t>(cur.hi, 0)};
        break;
      case FpInstr::EpiOp::kClamp:
        cur = {fp::saturate(cur.lo, stp.b, stp.c), fp::saturate(cur.hi, stp.b, stp.c)};
        break;
      case FpInstr::EpiOp::kLeaky: {
        const int lift = static_cast<int>(-stp.a);
        auto f = [&](int64_t x) {
          return std::max(sat_shl(x, lift), sat_mul(x, stp.b));
        };
        cur = {f(cur.lo), f(cur.hi)};
        e += static_cast<int>(stp.a);
        break;
      }
    }
  }
  if (out_exp) *out_exp = e;
  return cur;
}

}  // namespace

ExecPlan build_exec_plan(const std::vector<FpInstr>& instrs, int n_registers,
                         int input_register, int output_register,
                         const std::vector<fpk::Algo>* algos) {
  ExecPlan plan;
  plan.regs.assign(static_cast<size_t>(n_registers), ExecPlan::Reg{});
  plan.consts.assign(instrs.size(), ExecPlan::Const{});
  if (algos) plan.algos = *algos;
  const auto algo_of = [&](size_t idx) {
    return algos && idx < algos->size() ? (*algos)[idx] : fpk::Algo::kAuto;
  };

  // ---- Per-channel structural validation -------------------------------
  // chan_data marks a matmul whose output lanes sit at per-channel
  // exponents (base + delta[c]). The correction must retire through a
  // requant before anything else interprets the value: fused kinds need a
  // leading kRequant epilogue step, standalone matmuls may only feed
  // kRequant instructions carrying the same channel table. Runs here (not
  // at compile) so deserialized programs get the same guarantee.
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    if (in.chan_data.empty() || !is_matmul_kind(in.kind)) continue;
    if (is_fused_kind(in.kind)) {
      if (epi_step_count(in) == 0 ||
          static_cast<FpInstr::EpiOp>(epi_step(in, 0).op) != FpInstr::EpiOp::kRequant) {
        throw std::runtime_error(
            "fp plan: per-channel fused matmul must open its epilogue with a requant");
      }
      continue;
    }
    for (size_t j = idx + 1; j < instrs.size(); ++j) {
      const FpInstr& rd = instrs[j];
      for (int r : rd.inputs) {
        if (r != in.output) continue;
        if (rd.kind != FpInstr::Kind::kRequant ||
            rd.chan_data.size() != in.chan_data.size()) {
          throw std::runtime_error(
              "fp plan: per-channel matmul output may only feed a per-channel requant");
        }
      }
      if (rd.output == in.output) break;  // register redefined
    }
  }

  // ---- Pass 1: value bounds -> storage widths --------------------------
  // Exponents are static: replay the same propagation the compiler and the
  // reference interpreter perform, so the typed executor never has to track
  // scales at run time.
  std::vector<Interval> iv(static_cast<size_t>(n_registers));
  std::vector<int> rex(static_cast<size_t>(n_registers), 0);
  auto in_iv = [&](const FpInstr& in, int i) -> Interval& {
    return iv[static_cast<size_t>(in.inputs[static_cast<size_t>(i)])];
  };
  auto in_exp = [&](const FpInstr& in) {
    return in.inputs.empty() ? 0 : rex[static_cast<size_t>(in.inputs[0])];
  };
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    Interval out;
    IntWidth min_width = IntWidth::kI8;
    // Matmul-family accumulator bound max_o(sum_k |w[k][o]|) * max|x|; stays
    // 0 for other kinds. For fused kinds this bounds the PRE-epilogue value
    // and certifies int32 in-register accumulation (acc_ok32 below).
    int64_t acc_bound = 0;
    if (is_matmul_kind(in.kind)) {
      acc_bound =
          sat_mul(max_abs_col_sum(in.const_data, weight_cols(in)), in_iv(in, 0).abs_max());
    }
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
      case FpInstr::Kind::kRequant:
        out = {in.clamp_lo, in.clamp_hi};
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDense:
      case FpInstr::Kind::kDepthwise: {
        out = {sat_mul(acc_bound, -1), acc_bound};
        // Accumulate natively in the GEMM kernels' int32 (or int64).
        min_width = IntWidth::kI32;
        break;
      }
      case FpInstr::Kind::kConv2dFused:
      case FpInstr::Kind::kDepthwiseFused:
      case FpInstr::Kind::kDenseFused:
        // The register holds the POST-epilogue value (the accumulator never
        // reaches memory), so no int32 floor applies — fused conv outputs
        // typically plan at int8.
        out = replay_epi_interval(in, {sat_mul(acc_bound, -1), acc_bound},
                                  /*acc_exp=*/0, nullptr);
        break;
      case FpInstr::Kind::kBiasAdd: {
        int64_t bmin = 0, bmax = 0;
        if (!in.const_data.empty()) {
          const auto [mn, mx] = std::minmax_element(in.const_data.begin(), in.const_data.end());
          bmin = *mn;
          bmax = *mx;
        }
        out = {sat_add(in_iv(in, 0).lo, bmin), sat_add(in_iv(in, 0).hi, bmax)};
        break;
      }
      case FpInstr::Kind::kRelu:
        out = {std::max<int64_t>(in_iv(in, 0).lo, 0), std::max<int64_t>(in_iv(in, 0).hi, 0)};
        break;
      case FpInstr::Kind::kRelu6:
        out = {fp::saturate(in_iv(in, 0).lo, in.clamp_lo, in.clamp_hi),
               fp::saturate(in_iv(in, 0).hi, in.clamp_lo, in.clamp_hi)};
        break;
      case FpInstr::Kind::kLeakyRelu: {
        const int lift = -in.alpha_exponent;
        // f(x) = max(x << lift, x * alpha_q) is monotone in x (both branches
        // increase with x, alpha_q > 0), so the output interval is
        // [f(lo), f(hi)].
        auto f = [&](int64_t x) {
          return std::max(sat_shl(x, lift), sat_mul(x, in.alpha_q));
        };
        out = {f(in_iv(in, 0).lo), f(in_iv(in, 0).hi)};
        break;
      }
      case FpInstr::Kind::kMaxPool:
        // An all-padding window yields 0, so 0 joins the interval.
        out = {std::min<int64_t>(in_iv(in, 0).lo, 0), std::max<int64_t>(in_iv(in, 0).hi, 0)};
        break;
      case FpInstr::Kind::kEltwiseAdd:
        out = {sat_add(in_iv(in, 0).lo, in_iv(in, 1).lo),
               sat_add(in_iv(in, 0).hi, in_iv(in, 1).hi)};
        break;
      case FpInstr::Kind::kConcat: {
        out = in_iv(in, 0);
        for (size_t i = 1; i < in.inputs.size(); ++i) {
          out.lo = std::min(out.lo, in_iv(in, static_cast<int>(i)).lo);
          out.hi = std::max(out.hi, in_iv(in, static_cast<int>(i)).hi);
        }
        break;
      }
      case FpInstr::Kind::kFlatten:
        out = in_iv(in, 0);
        break;
      case FpInstr::Kind::kLayoutPack:
        // The padded channel lanes are written as 0, so 0 joins the interval
        // (same rule as an all-padding maxpool window).
        out = {std::min<int64_t>(in_iv(in, 0).lo, 0), std::max<int64_t>(in_iv(in, 0).hi, 0)};
        break;
      case FpInstr::Kind::kLayoutUnpack:
        // Padded lanes are dropped; the logical lanes pass through.
        out = in_iv(in, 0);
        break;
    }
    // A blocked fused matmul's padded output lanes hold epilogue(0) (vector
    // retire) or 0 (scalar retire); both lie inside the planned interval
    // joined with 0, and downstream blocked kernels multiply them by zero
    // weight lanes, so joining 0 keeps the width proof airtight.
    if (is_fused_kind(in.kind) && algo_of(idx) == fpk::Algo::kBlocked) {
      out.lo = std::min<int64_t>(out.lo, 0);
      out.hi = std::max<int64_t>(out.hi, 0);
    }
    int out_exp = in_exp(in);
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
      case FpInstr::Kind::kRequant:
        out_exp = in.out_exponent;
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDense:
      case FpInstr::Kind::kDepthwise:
        out_exp = in_exp(in) + in.const_exponent;
        break;
      case FpInstr::Kind::kConv2dFused:
      case FpInstr::Kind::kDepthwiseFused:
      case FpInstr::Kind::kDenseFused:
        replay_epi_interval(in, {}, in_exp(in) + in.const_exponent, &out_exp);
        break;
      case FpInstr::Kind::kLeakyRelu:
        out_exp = in_exp(in) + in.alpha_exponent;
        break;
      default:
        break;  // exponent passes through
    }
    // A per-channel standalone requant reads lane c at exponent
    // in_exp + chan_data[c]; resolve the per-lane fp::rescale distances
    // to - from_c now so the executor just indexes a table.
    if (in.kind == FpInstr::Kind::kRequant && !in.chan_data.empty()) {
      ExecPlan::Const& c = plan.consts[idx];
      c.chan_shifts.resize(in.chan_data.size());
      for (size_t ci = 0; ci < in.chan_data.size(); ++ci) {
        c.chan_shifts[ci] =
            in.out_exponent - (in_exp(in) + static_cast<int>(in.chan_data[ci]));
      }
    }
    rex[static_cast<size_t>(in.output)] = out_exp;

    iv[static_cast<size_t>(in.output)] = out;
    ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(in.output)];
    reg.lo = out.lo;
    reg.hi = out.hi;
    reg.exponent = out_exp;
    reg.width = widen_to(width_for_bounds(out.lo, out.hi), min_width);

    if (base_kind_of(in.kind) == FpInstr::Kind::kConv2d) plan.needs_scratch = true;

    // ---- Typed weight constants for the matmul family ------------------
    if (is_matmul_kind(in.kind)) {
      const FpInstr::Kind base = base_kind_of(in.kind);
      int64_t wmin = 0, wmax = 0;
      if (!in.const_data.empty()) {
        const auto [mn, mx] = std::minmax_element(in.const_data.begin(), in.const_data.end());
        wmin = *mn;
        wmax = *mx;
      }
      ExecPlan::Const& c = plan.consts[idx];
      c.width = width_for_bounds(wmin, wmax);
      switch (c.width) {
        case IntWidth::kI8:
          c.i8.assign(in.const_data.begin(), in.const_data.end());
          // Conv/dense weights are the GEMM B operand; pre-pack the
          // k-pair-interleaved int16 copy the vpmaddwd kernels consume.
          if (base != FpInstr::Kind::kDepthwise) {
            const int64_t n = in.const_shape[base == FpInstr::Kind::kDense ? 1 : 3];
            if (n > 0) {
              c.b_pair16 = fpk::pack_b_pair16(
                  c.i8.data(), static_cast<int64_t>(c.i8.size()) / n, n);
              // Weights already inside int4 range: carry the nibble-packed
              // copy too, so the tuner can measure the sub-byte candidates.
              if (wmin >= -8 && wmax <= 7) {
                c.b_nib4 = fpk::pack_b_nib4(
                    c.i8.data(), static_cast<int64_t>(c.i8.size()) / n, n);
              }
            }
          }
          // Tuner-selected blocked instructions additionally carry the
          // channel-blocked weight copy their kernels consume.
          if (algo_of(idx) == fpk::Algo::kBlocked) {
            if (base == FpInstr::Kind::kDepthwise) {
              c.w_blk8 = fpk::pack_dw_wblk8(c.i8.data(), in.const_shape[0],
                                            in.const_shape[1], in.const_shape[2]);
            } else {
              c.b_blk16 = fpk::pack_conv_wblk16(c.i8.data(), in.const_shape[0],
                                                in.const_shape[1], in.const_shape[2],
                                                in.const_shape[3]);
            }
          }
          break;
        case IntWidth::kI16:
          c.i16.assign(in.const_data.begin(), in.const_data.end());
          break;
        case IntWidth::kI32:
          c.i32.assign(in.const_data.begin(), in.const_data.end());
          break;
        case IntWidth::kI64:
          break;  // read from instr.const_data directly
      }

      // ---- Lower the fused epilogue to executable steps ----------------
      // Requant shifts resolve against the static exponent replay, exactly
      // as the standalone requant executor computes them at run time.
      if (is_fused_kind(in.kind)) {
        c.acc_ok32 = acc_bound <= std::numeric_limits<int32_t>::max();
        int e = in_exp(in) + in.const_exponent;
        bool chan_pending = !in.chan_data.empty();
        for (int s = 0; s < epi_step_count(in); ++s) {
          const FpEpiStep stp = epi_step(in, s);
          fpk::EpiStep es;
          es.op = static_cast<int>(stp.op);
          switch (static_cast<FpInstr::EpiOp>(stp.op)) {
            case FpInstr::EpiOp::kRequant:
              es.shift = static_cast<int>(stp.a) - e;
              if (chan_pending) {
                // First requant after a per-channel accumulator: lane c sits
                // delta[c] above the base exponent e, so its rescale
                // distance shrinks by delta[c].
                es.per_channel = true;
                c.chan_shifts.resize(in.chan_data.size());
                for (size_t ci = 0; ci < in.chan_data.size(); ++ci) {
                  c.chan_shifts[ci] = es.shift - static_cast<int>(in.chan_data[ci]);
                }
                chan_pending = false;
              }
              es.lo = stp.b;
              es.hi = stp.c;
              e = static_cast<int>(stp.a);
              break;
            case FpInstr::EpiOp::kClamp:
              es.lo = stp.b;
              es.hi = stp.c;
              break;
            case FpInstr::EpiOp::kLeaky: {
              // Reduce (alpha_q, lift) by their common power-of-two factor
              // 2^t when a later requant absorbs it. Both branches of
              // max(x << lift, x * alpha_q) are multiples of 2^t, so the
              // reduced step yields exactly value / 2^t; a relu in between
              // commutes with the scaling, and the requant's
              // round-half-to-even shift (shrunk by t through the exponent
              // replay) sees identical quotient, remainder comparison and
              // parity — so the final stored values are bit-identical.
              // Without the reduction, lifts like 17 on an int16-range input
              // blow the int32 proof and push the whole chain to the scalar
              // epilogue.
              int lift = static_cast<int>(-stp.a);
              const int64_t aq = stp.b;
              int t = lift;
              if (aq != 0) {
                t = 0;
                while (t < lift && ((aq >> t) & 1) == 0) ++t;
              }
              if (t > 0) {
                bool absorbed = false;
                for (int s2 = s + 1; s2 < epi_step_count(in); ++s2) {
                  const auto op2 = static_cast<FpInstr::EpiOp>(epi_step(in, s2).op);
                  if (op2 == FpInstr::EpiOp::kRelu) continue;
                  absorbed = op2 == FpInstr::EpiOp::kRequant;
                  break;
                }
                if (!absorbed) t = 0;
              }
              es.lift = lift - t;
              es.alpha_q = aq >> t;
              e += static_cast<int>(stp.a) + t;
              break;
            }
            case FpInstr::EpiOp::kBias:
            case FpInstr::EpiOp::kRelu:
              break;
          }
          c.epi.push_back(es);
        }

        // ---- Compose clamp-family steps ---------------------------------
        // A relu (= clamp to [0, +inf)) or clamp directly after a requant or
        // another clamp folds into the earlier step's saturation bounds:
        // clamp(clamp(x, l1, h1), l2, h2) == clamp(x, clamp(l1, l2, h2),
        // clamp(h1, l2, h2)) for every x (both sides are nondecreasing,
        // piecewise-identity, with the same range). The retire loop then runs
        // one fewer per-lane step — the requant's existing min/max absorbs
        // the activation for free.
        {
          size_t w = 0;
          for (size_t r = 0; r < c.epi.size(); ++r) {
            const auto op = static_cast<FpInstr::EpiOp>(c.epi[r].op);
            if (w > 0 &&
                (op == FpInstr::EpiOp::kRelu || op == FpInstr::EpiOp::kClamp)) {
              fpk::EpiStep& prev = c.epi[w - 1];
              const auto pop = static_cast<FpInstr::EpiOp>(prev.op);
              if (pop == FpInstr::EpiOp::kRequant ||
                  pop == FpInstr::EpiOp::kClamp) {
                const int64_t l2 = op == FpInstr::EpiOp::kRelu ? 0 : c.epi[r].lo;
                const int64_t h2 = op == FpInstr::EpiOp::kRelu
                                       ? std::numeric_limits<int64_t>::max()
                                       : c.epi[r].hi;
                prev.lo = fp::saturate(prev.lo, l2, h2);
                prev.hi = fp::saturate(prev.hi, l2, h2);
                continue;
              }
            }
            c.epi[w++] = c.epi[r];
          }
          c.epi.resize(w);
        }

        // ---- Prove the epilogue int32-safe for SIMD lanes --------------
        // Replay the value interval through the LOWERED steps: if every
        // intermediate (bias sums, pre-clamp left shifts, leaky branches)
        // provably fits int32 and every shift stays under 31 bits, the
        // vector kernels can run the whole step list in 32-bit lanes and
        // stay bit-identical to the int64 epi_apply.
        constexpr int64_t kI32Lo = std::numeric_limits<int32_t>::min();
        constexpr int64_t kI32Hi = std::numeric_limits<int32_t>::max();
        const auto fits32 = [&](int64_t lo, int64_t hi) {
          return lo >= kI32Lo && hi <= kI32Hi;
        };
        // Per-channel epilogues always retire through the scalar epi_apply
        // (which indexes chan_shift); the 32-bit vector path only knows one
        // shift per step.
        bool vec32 = c.acc_ok32 && in.chan_data.empty();
        Interval cur{sat_mul(acc_bound, -1), acc_bound};
        int64_t bmin = 0, bmax = 0;
        if (!in.bias_data.empty()) {
          const auto [mn, mx] =
              std::minmax_element(in.bias_data.begin(), in.bias_data.end());
          bmin = *mn;
          bmax = *mx;
        }
        for (const fpk::EpiStep& es : c.epi) {
          switch (static_cast<FpInstr::EpiOp>(es.op)) {
            case FpInstr::EpiOp::kRequant:
              vec32 = vec32 && es.shift > -31 && es.shift < 31;
              if (es.shift < 0) {
                vec32 = vec32 && fits32(sat_shl(cur.lo, -es.shift),
                                        sat_shl(cur.hi, -es.shift));
              } else if (es.shift > 0) {
                // The vector kernels round via v + (half - 1 + floor-LSB),
                // then one arithmetic shift — the sum needs v + half of
                // int32 headroom.
                vec32 = vec32 &&
                        fits32(cur.lo, sat_add(cur.hi, int64_t{1}
                                                           << (es.shift - 1)));
              }
              cur = {es.lo, es.hi};
              break;
            case FpInstr::EpiOp::kBias:
              vec32 = vec32 && fits32(bmin, bmax);
              cur = {sat_add(cur.lo, bmin), sat_add(cur.hi, bmax)};
              break;
            case FpInstr::EpiOp::kRelu:
              cur = {std::max<int64_t>(cur.lo, 0), std::max<int64_t>(cur.hi, 0)};
              break;
            case FpInstr::EpiOp::kClamp:
              cur = {fp::saturate(cur.lo, es.lo, es.hi),
                     fp::saturate(cur.hi, es.lo, es.hi)};
              break;
            case FpInstr::EpiOp::kLeaky: {
              vec32 = vec32 && es.lift < 31 && fits32(es.alpha_q, es.alpha_q) &&
                      fits32(sat_shl(cur.lo, es.lift), sat_shl(cur.hi, es.lift)) &&
                      fits32(std::min(sat_mul(cur.lo, es.alpha_q),
                                      sat_mul(cur.hi, es.alpha_q)),
                             std::max(sat_mul(cur.lo, es.alpha_q),
                                      sat_mul(cur.hi, es.alpha_q)));
              const auto f = [&](int64_t x) {
                return std::max(sat_shl(x, es.lift), sat_mul(x, es.alpha_q));
              };
              cur = {f(cur.lo), f(cur.hi)};
              break;
            }
          }
          vec32 = vec32 && fits32(cur.lo, cur.hi);
        }
        c.epi_vec32 = vec32;
        if (vec32 && !in.bias_data.empty()) {
          c.bias32.assign(in.bias_data.begin(), in.bias_data.end());
          c.bias32.resize(in.bias_data.size() + 8, 0);  // vector-load slack
        }
      }
    }
  }

  // ---- Pass 2: liveness -> arena slots ---------------------------------
  // A flatten is a pure reshape — identical lanes, width, bounds and
  // exponent — so its output ALIASES the producer's storage instead of
  // getting a slot of its own, and the executor copies nothing. Liveness is
  // tracked per alias family root: the shared slot frees only once the last
  // reader of ANY alias has run.
  //
  // Slot selection is best-fit under nominal register sizes: arena cost is
  // the sum of per-slot high-water marks, so a freed big slot should absorb
  // later big registers (reuse under the mark is free) while small values
  // pack into small slots instead of inflating a large one's neighbour.
  std::vector<int> root(static_cast<size_t>(n_registers));
  std::iota(root.begin(), root.end(), 0);
  for (const FpInstr& in : instrs) {
    if (in.kind == FpInstr::Kind::kFlatten && !in.inputs.empty() &&
        in.inputs[0] != input_register) {
      root[static_cast<size_t>(in.output)] = root[static_cast<size_t>(in.inputs[0])];
    }
  }

  std::vector<int> last_use(static_cast<size_t>(n_registers), -1);
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    for (int r : instrs[idx].inputs) {
      last_use[static_cast<size_t>(root[static_cast<size_t>(r)])] = static_cast<int>(idx);
    }
  }
  if (output_register >= 0) {
    last_use[static_cast<size_t>(root[static_cast<size_t>(output_register)])] =
        static_cast<int>(instrs.size());  // live past the end
  }

  std::vector<int64_t> nominal(static_cast<size_t>(n_registers), 0);
  {
    std::vector<FpRegShape> shapes;
    infer_register_shapes(instrs, n_registers, input_register,
                          fp_nominal_input_shape(instrs), shapes);
    for (int r = 0; r < n_registers; ++r) {
      nominal[static_cast<size_t>(r)] =
          shapes[static_cast<size_t>(r)].numel *
          width_bytes(plan.regs[static_cast<size_t>(r)].width);
    }
  }

  std::vector<int> free_slots;
  std::vector<int64_t> slot_hw;  // high-water nominal bytes per slot
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(in.output)];
    const int out_root = root[static_cast<size_t>(in.output)];
    const int64_t need = nominal[static_cast<size_t>(in.output)];
    if (out_root != in.output) {
      // Aliased flatten: share the family root's slot, allocate nothing.
      reg.slot = plan.regs[static_cast<size_t>(out_root)].slot;
    } else if (free_slots.empty()) {
      // Assign the output a slot no live register holds (an instruction's
      // output must never alias an input it is still reading).
      reg.slot = plan.n_slots++;
      slot_hw.push_back(need);
    } else {
      // Best fit: the tightest free slot that already holds the value, else
      // the biggest free slot (smallest growth). Keys only on sizes and slot
      // ids, so packing is a pure function of the instruction stream.
      size_t pick = 0;
      bool pick_fits = false;
      for (size_t f = 0; f < free_slots.size(); ++f) {
        const int64_t hw = slot_hw[static_cast<size_t>(free_slots[f])];
        const bool fits = hw >= need;
        bool better;
        if (f == 0) {
          better = true;
        } else if (fits != pick_fits) {
          better = fits;
        } else {
          const int64_t ph = slot_hw[static_cast<size_t>(free_slots[pick])];
          better = fits ? (hw < ph || (hw == ph && free_slots[f] < free_slots[pick]))
                        : (hw > ph || (hw == ph && free_slots[f] < free_slots[pick]));
        }
        if (better) {
          pick = f;
          pick_fits = fits;
        }
      }
      reg.slot = free_slots[static_cast<size_t>(pick)];
      free_slots.erase(free_slots.begin() + static_cast<std::ptrdiff_t>(pick));
      int64_t& hw = slot_hw[static_cast<size_t>(reg.slot)];
      hw = std::max(hw, need);
    }
    // Inputs whose alias family dies here release their slots for the NEXT
    // instruction (each family freed once even if read through two aliases).
    for (size_t a = 0; a < in.inputs.size(); ++a) {
      const int r = in.inputs[a];
      if (r == input_register) continue;  // float input: no slot
      const int rt = root[static_cast<size_t>(r)];
      bool seen = false;
      for (size_t b = 0; b < a && !seen; ++b) {
        seen = root[static_cast<size_t>(in.inputs[b])] == rt;
      }
      if (seen) continue;
      if (last_use[static_cast<size_t>(rt)] == static_cast<int>(idx)) {
        const int s = plan.regs[static_cast<size_t>(rt)].slot;
        if (s >= 0) free_slots.push_back(s);
      }
    }
    // An output nothing ever reads (cannot happen for compiled graphs, but
    // harmless): release immediately.
    if (out_root == in.output && last_use[static_cast<size_t>(in.output)] < 0 &&
        in.output != output_register) {
      free_slots.push_back(reg.slot);
    }
  }
  return plan;
}

Shape fp_nominal_input_shape(const std::vector<FpInstr>& instrs) {
  for (const FpInstr& in : instrs) {
    switch (base_kind_of(in.kind)) {
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kDepthwise:
        return {1, 16, 16, in.const_shape[2]};
      case FpInstr::Kind::kDense:
        return {1, in.const_shape[0]};
      default:
        break;
    }
  }
  return {1, 16, 16, 3};
}

void infer_register_shapes(const std::vector<FpInstr>& instrs, int n_registers,
                           int input_register, const Shape& input_shape,
                           std::vector<FpRegShape>& out) {
  if (static_cast<int>(input_shape.size()) > 4) {
    throw std::invalid_argument("fp exec: input rank > 4 unsupported");
  }
  out.resize(static_cast<size_t>(n_registers));
  auto set_shape = [&](int reg, const FpRegShape& s) { out[static_cast<size_t>(reg)] = s; };

  FpRegShape in_s;
  in_s.rank = static_cast<int>(input_shape.size());
  in_s.numel = 1;
  for (int i = 0; i < in_s.rank; ++i) {
    in_s.dims[i] = input_shape[static_cast<size_t>(i)];
    in_s.numel *= in_s.dims[i];
  }
  if (input_register >= 0) set_shape(input_register, in_s);

  for (const FpInstr& in : instrs) {
    const FpRegShape& x = out[static_cast<size_t>(in.inputs.empty() ? in.output : in.inputs[0])];
    FpRegShape y = x;
    switch (in.kind) {
      case FpInstr::Kind::kQuantizeInput:
        y = in_s;
        break;
      case FpInstr::Kind::kConv2d:
      case FpInstr::Kind::kConv2dFused:
      case FpInstr::Kind::kDepthwise:
      case FpInstr::Kind::kDepthwiseFused:
      case FpInstr::Kind::kMaxPool: {
        y.rank = 4;
        y.dims[0] = x.dims[0];
        y.dims[1] = in.geom.out_h(x.dims[1]);
        y.dims[2] = in.geom.out_w(x.dims[2]);
        y.dims[3] = base_kind_of(in.kind) == FpInstr::Kind::kConv2d ? in.const_shape[3]
                                                                    : x.dims[3];
        // A blocked-layout input (NC8HW8) means the tuner selected the
        // blocked kernel here; its output stays blocked. Dims are always
        // logical, numel is the (padded) storage lane count.
        y.blocked = x.blocked;
        y.numel = y.dims[0] * y.dims[1] * y.dims[2] *
                  (y.blocked ? fpk::blocked_c(y.dims[3]) : y.dims[3]);
        break;
      }
      case FpInstr::Kind::kLayoutPack:
        y.blocked = true;
        y.numel = y.dims[0] * y.dims[1] * y.dims[2] * fpk::blocked_c(y.dims[3]);
        break;
      case FpInstr::Kind::kLayoutUnpack:
        y.blocked = false;
        y.numel = y.dims[0] * y.dims[1] * y.dims[2] * y.dims[3];
        break;
      case FpInstr::Kind::kDense:
      case FpInstr::Kind::kDenseFused:
        y.rank = 2;
        y.dims[0] = x.dims[0];
        y.dims[1] = in.const_shape[1];
        y.dims[2] = y.dims[3] = 0;
        y.numel = y.dims[0] * y.dims[1];
        break;
      case FpInstr::Kind::kConcat: {
        int64_t total_c = 0;
        for (int r : in.inputs) {
          const FpRegShape& s = out[static_cast<size_t>(r)];
          total_c += s.dims[s.rank - 1];
        }
        y.dims[y.rank - 1] = total_c;
        y.numel = 1;
        for (int i = 0; i < y.rank; ++i) y.numel *= y.dims[i];
        break;
      }
      case FpInstr::Kind::kFlatten:
        y.rank = 2;
        y.dims[1] = x.numel / x.dims[0];
        y.dims[2] = y.dims[3] = 0;
        y.numel = x.numel;
        break;
      default:  // elementwise: shape passes through
        break;
    }
    set_shape(in.output, y);
  }
}

TrafficEstimate estimate_traffic(const FixedPointProgram& prog, const Shape& input_shape) {
  const ExecPlan& plan = prog.plan();
  // Walk the EXECUTION stream (layout pseudo-ops included): plan.consts,
  // plan.algos and plan.regs are aligned with it, not with the canonical
  // instructions, whenever the autotuner derived one.
  const auto& instrs = plan.instrs.empty() ? prog.instructions() : plan.instrs;
  std::vector<FpRegShape> shapes;
  int input_reg = -1;
  for (const FpInstr& in : instrs) {
    if (in.kind == FpInstr::Kind::kQuantizeInput) input_reg = in.inputs[0];
  }
  infer_register_shapes(instrs, static_cast<int>(plan.regs.size()), input_reg, input_shape,
                        shapes);

  TrafficEstimate t;
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const FpInstr& in = instrs[idx];
    const FpRegShape& y = shapes[static_cast<size_t>(in.output)];
    // Layout pseudo-ops exist only in the typed execution stream — the
    // reference interpreter never runs them.
    if (in.kind == FpInstr::Kind::kLayoutPack || in.kind == FpInstr::Kind::kLayoutUnpack) {
      t.typed_bytes += y.numel * width_bytes(plan.regs[static_cast<size_t>(in.output)].width);
      const FpRegShape& s = shapes[static_cast<size_t>(in.inputs[0])];
      t.typed_bytes += s.numel * width_bytes(plan.regs[static_cast<size_t>(in.inputs[0])].width);
      continue;
    }
    // A plan-aliased flatten moves no typed bytes at all (the reference
    // interpreter still copies its int64 lanes).
    if (in.kind == FpInstr::Kind::kFlatten && !in.inputs.empty() &&
        plan.regs[static_cast<size_t>(in.output)].slot >= 0 &&
        plan.regs[static_cast<size_t>(in.output)].slot ==
            plan.regs[static_cast<size_t>(in.inputs[0])].slot) {
      t.reference_bytes += y.numel * 16;
      continue;
    }
    // Writes.
    t.typed_bytes += y.numel * width_bytes(plan.regs[static_cast<size_t>(in.output)].width);
    t.reference_bytes += y.numel * 8;
    // Activation reads (the float input counts as 4 bytes/lane for both).
    for (int r : in.inputs) {
      const FpRegShape& s = shapes[static_cast<size_t>(r)];
      if (r == input_reg) {
        t.typed_bytes += s.numel * 4;
        t.reference_bytes += s.numel * 4;
      } else {
        t.typed_bytes += s.numel * width_bytes(plan.regs[static_cast<size_t>(r)].width);
        t.reference_bytes += s.numel * 8;
      }
    }
    // Constant reads.
    const int64_t cn = static_cast<int64_t>(in.const_data.size());
    t.typed_bytes += cn * width_bytes(plan.consts[idx].width);
    t.reference_bytes += cn * 8;
    if (is_fused_kind(in.kind)) {
      const int64_t bn = static_cast<int64_t>(in.bias_data.size());
      t.typed_bytes += bn * 8;
      t.reference_bytes += bn * 8;
      // The reference interpreter replays each epilogue step as a full
      // int64 read+write pass over the output.
      t.reference_bytes += y.numel * 16 * epi_step_count(in);
    }
  }
  return t;
}

const ExecPlan& FixedPointProgram::plan() const {
  if (!plan_) {
    throw std::logic_error("fixed-point program has no execution plan (not finalized)");
  }
  return *plan_;
}

void FixedPointProgram::finalize() {
  FuseStats st;
  st.instrs_before = st.instrs_after = static_cast<int>(instrs_.size());
  if (fusion_enabled()) {
    const int64_t pre_fuse_arena =
        estimate_arena_bytes(instrs_, n_registers, input_register, output_register);
    st = fuse_program(instrs_, n_registers, input_register, output_register);
    st.arena_bytes_before = pre_fuse_arena;
    // Keep the liveness-minimizing schedule only when it provably does not
    // grow the nominal arena. `<=` (not `<`) makes load-time refinalization
    // idempotent: rescheduling an already scheduled program reproduces it
    // (equal estimate), so a saved program's slot count survives round-trips.
    std::vector<FpInstr> cand =
        schedule_program(instrs_, n_registers, input_register, output_register);
    if (estimate_arena_bytes(cand, n_registers, input_register, output_register) <=
        estimate_arena_bytes(instrs_, n_registers, input_register, output_register)) {
      instrs_ = std::move(cand);
    }
    st.arena_bytes_after =
        estimate_arena_bytes(instrs_, n_registers, input_register, output_register);

    auto& m = observe::MetricsRegistry::global();
    m.gauge("engine.fusion.instrs_before").set(st.instrs_before);
    m.gauge("engine.fusion.instrs_after").set(st.instrs_after);
    m.gauge("engine.fusion.fused_matmuls").set(st.fused_matmuls);
    m.gauge("engine.fusion.collapsed_requants").set(st.collapsed_requants);
    m.gauge("engine.fusion.arena_bytes_before").set(st.arena_bytes_before);
    m.gauge("engine.fusion.arena_bytes_after").set(st.arena_bytes_after);
  }
  fuse_stats_ = st;

  // Preliminary plan (static auto-pick everywhere) — also what the tuner's
  // probes read widths, typed consts and lowered epilogues from.
  ExecPlan plan = build_exec_plan(instrs_, n_registers, input_register, output_register);
  tuning_.reset();
  if (autotune::mode() != autotune::Mode::kOff) {
    auto tuning = autotune::tune_program(instrs_, n_registers, input_register,
                                         output_register, plan, tune_source_path_);
    if (tuning) {
      if (tuning->blocked_instrs > 0) {
        // Derive the execution stream: canonical instructions + layout
        // pseudo-ops around the blocked chains, then re-plan against it.
        // The canonical program stays untouched (reference interpretation
        // and serialization never see the pseudo-ops).
        std::vector<FpInstr> stream = instrs_;
        std::vector<fpk::Algo> algos = tuning->algos;
        int n_regs = n_registers;
        insert_layout_ops(stream, algos, &n_regs, output_register);
        plan = build_exec_plan(stream, n_regs, input_register, output_register, &algos);
        plan.instrs = std::move(stream);
      } else {
        plan.algos = tuning->algos;
      }
      tuning_ = std::move(tuning);
    }
  }
  plan_ = std::make_shared<const ExecPlan>(std::move(plan));
}

}  // namespace tqt
