// Kernel autotuner (registry v2): per-instruction algo selection for the
// fused matmul family, measured once and cached.
//
// The planner proves several kernels exact for the same fused instruction
// (packed-B GEMM, raw-B GEMM, direct depthwise, the channel-blocked NC8HW8
// kernels, the generic int64 fallback) — they differ only in speed. At
// finalize() time the tuner benchmarks the candidates best-of-N on synthetic
// inputs drawn from the planned register bounds, keyed by
// (op, input width, shape class, batch, kernel set), and records the winner:
//
//  * in a process-global shape cache, so the serving autocal path re-tunes a
//    recompiled program for free when its layer shapes are unchanged;
//  * in a versioned `.tqt.tune` sidecar written next to a saved model
//    artifact, validated by a hash of the canonical program and of the CPU
//    feature set. A stale, truncated or corrupt sidecar is silently ignored
//    and the program re-tunes — the sidecar is a cache, never a source of
//    truth.
//
// Determinism contract: measurements happen at most once per shape key per
// process (or are loaded from the sidecar); candidate order, rep counts and
// tie-breaks (lowest Algo value) are fixed, so a given set of measurements
// always yields the same selection. The tuner only ever changes WHICH exact
// kernel runs — every candidate is bit-identical to the int64 reference, so
// tuned and untuned programs agree lane for lane.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fixedpoint/engine.h"
#include "fixedpoint/plan.h"

namespace tqt::autotune {

/// Tuning policy. kOff leaves dispatch to the static per-process auto-pick
/// (exactly the pre-tuner behavior); kOn measures once per shape key, using
/// the shape cache and any valid sidecar; kForce re-measures everything and
/// ignores sidecars (the `tqt_cli tune` path).
enum class Mode { kOff, kOn, kForce };

/// Resolution order: set_mode() override, then the TQT_AUTOTUNE environment
/// variable ("1"/"on", "2"/"force", anything else off), then kOff.
Mode mode();

/// Override the mode: 0 = off, 1 = on, 2 = force, -1 = automatic (env).
void set_mode(int m);

/// One shape key's measurements. Times are seconds per run; t_blk < 0 means
/// the blocked candidate was not applicable to this key.
struct TuneEntry {
  int32_t winner = 0;  ///< fpk::Algo of the fastest standard candidate
  double t_std = 0;    ///< best standard-layout candidate time
  double t_blk = -1;   ///< blocked-kernel time (excluding layout transforms)
  double t_pack = 0;   ///< layout_pack time for this instruction's input
  double t_unpack = 0; ///< layout_unpack time for this instruction's output
};

/// A program's tuning result. `algos` is aligned with the CANONICAL
/// instruction stream (before any layout pseudo-ops); `entries` holds the
/// (shape key, measurements) pairs backing it, in instruction order, for
/// sidecar persistence.
struct ProgramTuning {
  std::vector<fpk::Algo> algos;
  std::vector<std::pair<std::string, TuneEntry>> entries;
  int tuned_instrs = 0;    ///< fused instructions with a measured selection
  int blocked_instrs = 0;  ///< of those, how many selected the blocked layout
  uint64_t program_hash = 0;
  bool from_sidecar = false;  ///< every entry came from the sidecar (no timing)
};

/// Tune one finalized-shape program: consult the sidecar (when `sidecar_path`
/// is non-empty and mode() != kForce) and the process shape cache, measure
/// whatever is missing, and decide per-instruction algos including the
/// blocked-chain selection. Returns null when the program has no tunable
/// instruction. `plan` is the preliminary plan built without algos (widths,
/// typed consts and lowered epilogues drive the probes).
std::shared_ptr<const ProgramTuning> tune_program(
    const std::vector<FpInstr>& instrs, int n_registers, int input_register,
    int output_register, const ExecPlan& plan, const std::string& sidecar_path);

/// FNV-1a over the canonical instruction stream (kinds, registers, geometry,
/// constants, epilogues, biases — everything that affects execution).
uint64_t hash_program(const std::vector<FpInstr>& instrs, int n_registers,
                      int input_register, int output_register);

/// FNV-1a over the active kernel set's identity (name + CPU feature bits);
/// a sidecar tuned on a different CPU class is rejected wholesale.
uint64_t cpu_feature_hash();

/// Write `tuning`'s entries as a `.tqt.tune` sidecar at `path` (overwrites).
/// Format: "TQTT" magic | u32 version | u64 program hash | u64 cpu hash |
/// u32 entry count | per entry: u32 key length, key bytes, i32 winner,
/// f64 t_std, f64 t_blk, f64 t_pack, f64 t_unpack. Returns false on I/O
/// failure (callers treat the sidecar as best-effort).
bool save_sidecar(const std::string& path, const ProgramTuning& tuning);

/// Parse a sidecar and validate it against the given hashes. Any mismatch,
/// truncation or corruption returns false with `out` untouched — the caller
/// silently re-tunes. Never throws.
bool load_sidecar(const std::string& path, uint64_t program_hash,
                  uint64_t cpu_hash,
                  std::vector<std::pair<std::string, TuneEntry>>& out);

/// One row of the `--explain-kernels` table.
struct ExplainRow {
  std::string name;   ///< instruction debug name
  std::string kind;   ///< instruction kind
  std::string shape;  ///< shape-class key (empty for non-tunable kinds)
  std::string algo;   ///< resolved algo name
  bool tuned = false; ///< true when the algo came from a measured selection
};

/// Per-exec-instruction kernel/algo choices for a finalized program.
std::vector<ExplainRow> explain_kernels(const FixedPointProgram& prog);

/// Test hooks. set_forced_algo_for_test(a) makes tune_program skip all
/// measurement and select algo `a` for every instruction that can run it
/// (-1 disables). reset_for_test() clears the forced algo and the process
/// shape cache so sidecar-validation tests observe real re-tunes.
void set_forced_algo_for_test(int algo);
void reset_for_test();

}  // namespace tqt::autotune

namespace tqt::detail {

/// Resolve the implementation a fused matmul instruction retires through,
/// given the planned preference (kAuto when untuned). Degrades gracefully
/// when the active kernel set lacks the preferred entry — except kBlocked,
/// which is honored unconditionally (both kernel sets register the blocked
/// kernels, and a blocked instruction's input register really is in NC8HW8
/// layout, so no other algo could read it).
fpk::Algo resolve_fused_algo(const FpInstr& in, const ExecPlan::Const& c,
                             IntWidth xw, fpk::Algo pref);

/// Execute one fused matmul instruction under `algo`. Shared by the executor
/// and the tuner's timing probes, so a probe measures exactly the code the
/// executor will run. `scratch` (im2col) and `acc` (generic int64 fallback)
/// are grown as needed (no-ops at steady state).
void run_fused(const FpInstr& in, const ExecPlan::Const& pc, fpk::Algo algo,
               const void* x, const FpRegShape& xs, IntWidth xw, void* y,
               IntWidth wy, int64_t yn, std::vector<unsigned char>& scratch,
               std::vector<unsigned char>& acc);

/// NHWC -> NC8HW8: copy `x` (int8, logical shape `xs`) into `y`, zeroing the
/// padded channel lanes. `y` must hold n*h*w*blocked_c(c) bytes.
void layout_pack(const int8_t* x, const FpRegShape& xs, int8_t* y);

/// NC8HW8 -> NHWC at width `w` (both sides the same width): drop the padded
/// channel lanes. `ys` is the LOGICAL output shape.
void layout_unpack(const void* x, IntWidth w, const FpRegShape& ys, void* y);

}  // namespace tqt::detail
