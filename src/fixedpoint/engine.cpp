// Compile stage of the fixed-point engine: walk the quantized inference
// graph in topological order and lower it to a linear FpInstr program. The
// plan stage (plan.cpp) then infers widths and arena slots; execution lives
// in exec.cpp (typed kernels) and reference.cpp (int64 interpreter).
#include "fixedpoint/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "fixedpoint/rescale.h"
#include "graph_opt/quantize_pass.h"
#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "quant/fake_quant.h"

namespace tqt {

namespace {

struct ConstEntry {
  std::vector<int64_t> data;
  Shape shape;
  int exponent = 0;                // per-channel: min_c e_w[c]
  std::vector<int64_t> chan;       // per-channel exponent deltas (else empty)
};

}  // namespace

FixedPointProgram compile_fixed_point(Graph& g, NodeId input_node, NodeId quantized_output) {
  FixedPointProgram prog;
  std::map<NodeId, int> reg_of;          // value-producing node -> register
  std::map<NodeId, int> reg_exponent;    // compile-time exponent per register holder
  std::map<NodeId, ConstEntry> consts;   // Variable / weight-quant nodes
  std::map<NodeId, std::vector<int64_t>> perchan;  // matmul node -> channel deltas

  auto new_reg = [&]() { return prog.n_registers++; };

  const auto order = g.topo_order({quantized_output});
  for (NodeId id : order) {
    Node& n = g.node(id);
    const std::string type = n.op->type();

    if (type == "Input") {
      if (id != input_node) throw std::runtime_error("fp compile: unexpected extra input " + n.name);
      const int r = new_reg();
      reg_of[id] = r;
      prog.input_register = r;
      continue;
    }

    if (type == "Variable") {
      auto* var = dynamic_cast<VariableOp*>(n.op.get());
      ConstEntry e;
      e.shape = var->param()->value.shape();
      e.exponent = 0;  // raw float constant; must pass through a FakeQuant
      e.data.clear();
      // Record the Variable as a placeholder entry with no data: raw float
      // constants never reach the integer program directly. The consuming
      // FakeQuant node (below) reads var->param()->value straight off the
      // graph and stores the *quantized* integers under its own NodeId; a
      // matmul/bias whose weight lookup finds this empty entry instead of a
      // quantized one fails compilation with "not quantized".
      consts[id] = std::move(e);
      continue;
    }

    if (type == "FakeQuant") {
      auto& q = fake_quant_at(g, id);
      if (!q.enabled()) throw std::runtime_error("fp compile: disabled quantizer " + n.name);
      if (!q.power_of_2()) {
        throw std::runtime_error("fp compile: only power-of-2 quantizers export");
      }
      const NodeId src = n.inputs[0];
      const int64_t lo = q.bits().qmin();
      const int64_t hi = q.bits().qmax();

      if (q.per_channel() && g.node(src).op->type() != "Variable") {
        throw std::runtime_error("fp compile: per-channel quantizers are weight-only");
      }

      if (g.node(src).op->type() == "Variable") {
        // Quantize the constant now.
        auto* var = dynamic_cast<VariableOp*>(g.node(src).op.get());
        const Tensor& w = var->param()->value;
        ConstEntry e2;
        e2.shape = w.shape();
        e2.data.resize(static_cast<size_t>(w.numel()));
        if (q.per_channel()) {
          // Per-channel power-of-2 scales: channel c stores integers at
          // 2^e_w[c]. The entry keeps exponent = min_c e_w[c] and the deltas,
          // which ride the matmul and are applied by its consuming requant.
          const Shape& ws = w.shape();
          if (q.channel_axis() != static_cast<int64_t>(ws.size()) - 1) {
            throw std::runtime_error(
                "fp compile: per-channel axis must be the output-channel (last) "
                "weight axis at " + n.name);
          }
          const int64_t C = ws.back();
          std::vector<int> e_w(static_cast<size_t>(C));
          int e_min = q.channel_exponent(0);
          for (int64_t c = 0; c < C; ++c) {
            e_w[static_cast<size_t>(c)] = q.channel_exponent(c);
            e_min = std::min(e_min, e_w[static_cast<size_t>(c)]);
          }
          e2.exponent = e_min;
          e2.chan.resize(static_cast<size_t>(C));
          for (int64_t c = 0; c < C; ++c) {
            e2.chan[static_cast<size_t>(c)] = e_w[static_cast<size_t>(c)] - e_min;
          }
          // Channels are innermost (last axis): lane i quantizes at channel
          // i % C.
          for (int64_t i = 0; i < w.numel(); ++i) {
            const float s = std::exp2(static_cast<float>(e_w[static_cast<size_t>(i % C)]));
            e2.data[static_cast<size_t>(i)] =
                fp::saturate(static_cast<int64_t>(round_half_to_even(w[i] / s)), lo, hi);
          }
        } else {
          const int e = q.exponent();
          e2.exponent = e;
          const float s = std::exp2(static_cast<float>(e));
          for (int64_t i = 0; i < w.numel(); ++i) {
            e2.data[static_cast<size_t>(i)] =
                fp::saturate(static_cast<int64_t>(round_half_to_even(w[i] / s)), lo, hi);
          }
        }
        consts[id] = std::move(e2);
        continue;
      }
      const int e = q.exponent();

      FpInstr instr;
      instr.debug_name = n.name;
      instr.output = new_reg();
      instr.out_exponent = e;
      instr.clamp_lo = lo;
      instr.clamp_hi = hi;
      if (src == input_node) {
        instr.kind = FpInstr::Kind::kQuantizeInput;
        instr.inputs = {reg_of.at(src)};
      } else {
        instr.kind = FpInstr::Kind::kRequant;
        instr.inputs = {reg_of.at(src)};
        // A per-channel matmul's lanes sit at per-channel exponents; the
        // first requant carries the delta table and normalizes them.
        auto pit = perchan.find(src);
        if (pit != perchan.end()) instr.chan_data = pit->second;
      }
      reg_of[id] = instr.output;
      reg_exponent[id] = e;
      prog.instrs_.push_back(std::move(instr));
      continue;
    }

    if (type == "Conv2D" || type == "DepthwiseConv2D" || type == "Dense") {
      const NodeId xsrc = n.inputs[0];
      const NodeId wsrc = n.inputs[1];
      auto wit = consts.find(wsrc);
      if (wit == consts.end() || wit->second.data.empty()) {
        throw std::runtime_error("fp compile: weights of " + n.name + " are not quantized");
      }
      FpInstr instr;
      instr.debug_name = n.name;
      instr.inputs = {reg_of.at(xsrc)};
      instr.output = new_reg();
      instr.const_data = wit->second.data;
      instr.const_shape = wit->second.shape;
      instr.const_exponent = wit->second.exponent;
      instr.chan_data = wit->second.chan;
      if (!instr.chan_data.empty()) perchan[id] = instr.chan_data;
      if (type == "Conv2D") {
        instr.kind = FpInstr::Kind::kConv2d;
        instr.geom = dynamic_cast<Conv2dOp*>(n.op.get())->geom();
      } else if (type == "DepthwiseConv2D") {
        instr.kind = FpInstr::Kind::kDepthwise;
        instr.geom = dynamic_cast<DepthwiseConv2dOp*>(n.op.get())->geom();
      } else {
        instr.kind = FpInstr::Kind::kDense;
      }
      reg_of[id] = instr.output;
      reg_exponent[id] = reg_exponent.at(xsrc) + wit->second.exponent;
      prog.instrs_.push_back(std::move(instr));
      continue;
    }

    if (type == "BiasAdd") {
      const NodeId xsrc = n.inputs[0];
      const NodeId bsrc = n.inputs[1];
      auto bit = consts.find(bsrc);
      if (bit == consts.end() || bit->second.data.empty()) {
        throw std::runtime_error("fp compile: bias of " + n.name + " is not quantized");
      }
      if (bit->second.exponent != reg_exponent.at(xsrc)) {
        throw std::runtime_error("fp compile: bias scale of " + n.name +
                                 " is not merged with the accumulator scale");
      }
      FpInstr instr;
      instr.debug_name = n.name;
      instr.kind = FpInstr::Kind::kBiasAdd;
      instr.inputs = {reg_of.at(xsrc)};
      instr.output = new_reg();
      instr.const_data = bit->second.data;
      instr.const_shape = bit->second.shape;
      instr.const_exponent = bit->second.exponent;
      reg_of[id] = instr.output;
      reg_exponent[id] = reg_exponent.at(xsrc);
      prog.instrs_.push_back(std::move(instr));
      continue;
    }

    FpInstr instr;
    instr.debug_name = n.name;
    instr.output = new_reg();
    for (NodeId in : n.inputs) instr.inputs.push_back(reg_of.at(in));
    const int e_in = reg_exponent.count(n.inputs[0]) ? reg_exponent.at(n.inputs[0]) : 0;

    if (type == "Relu") {
      instr.kind = FpInstr::Kind::kRelu;
      reg_exponent[id] = e_in;
    } else if (type == "Relu6") {
      instr.kind = FpInstr::Kind::kRelu6;
      if (e_in > 1) throw std::runtime_error("fp compile: relu6 bound 6 not on grid at " + n.name);
      instr.clamp_lo = 0;
      instr.clamp_hi = int64_t{3} << (1 - e_in);  // 6 * 2^-e
      reg_exponent[id] = e_in;
    } else if (type == "LeakyRelu") {
      auto* lop = dynamic_cast<LeakyReluOp*>(n.op.get());
      const float alpha = lop->alpha();
      const int e_alpha = std::ilogb(alpha) - 14;
      const int64_t q_alpha = static_cast<int64_t>(round_half_to_even(alpha * std::exp2(-e_alpha)));
      instr.kind = FpInstr::Kind::kLeakyRelu;
      instr.alpha_q = q_alpha;
      instr.alpha_exponent = e_alpha;
      reg_exponent[id] = e_in + e_alpha;
    } else if (type == "MaxPool") {
      instr.kind = FpInstr::Kind::kMaxPool;
      instr.geom = dynamic_cast<MaxPoolOp*>(n.op.get())->geom();
      reg_exponent[id] = e_in;
    } else if (type == "EltwiseAdd") {
      if (reg_exponent.at(n.inputs[0]) != reg_exponent.at(n.inputs[1])) {
        throw std::runtime_error("fp compile: eltwise-add scales not merged at " + n.name);
      }
      instr.kind = FpInstr::Kind::kEltwiseAdd;
      reg_exponent[id] = e_in;
    } else if (type == "Concat") {
      for (NodeId in : n.inputs) {
        if (reg_exponent.at(in) != e_in) {
          throw std::runtime_error("fp compile: concat scales not merged at " + n.name);
        }
      }
      instr.kind = FpInstr::Kind::kConcat;
      reg_exponent[id] = e_in;
    } else if (type == "Flatten") {
      instr.kind = FpInstr::Kind::kFlatten;
      reg_exponent[id] = e_in;
    } else {
      throw std::runtime_error("fp compile: unsupported op " + type + " at " + n.name);
    }
    reg_of[id] = instr.output;
    prog.instrs_.push_back(std::move(instr));
  }

  prog.output_register = reg_of.at(quantized_output);
  prog.finalize();
  return prog;
}

int64_t FixedPointProgram::parameter_count() const {
  int64_t n = 0;
  for (const auto& in : instrs_) n += static_cast<int64_t>(in.const_data.size());
  return n;
}

}  // namespace tqt
