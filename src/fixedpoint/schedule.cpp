// Memory-pressure-aware instruction scheduling (see fuse.h).
//
// The planner's slot assignment is order-sensitive: two registers overlap
// (and need distinct arena slots) exactly when their def..last-use windows
// overlap in the scheduled order. Compile emits instructions in graph
// construction order, which for branchy models (inception's parallel
// towers) can keep every branch live at once. The list scheduler here picks,
// among data-ready instructions, the one whose output costs the least arena
// growth RIGHT NOW — it simulates the planner's own best-fit slot allocator
// (plan.cpp pass 2) incrementally, so the quantity it greedily minimizes is
// exactly the estimate finalize() accepts or rejects the order by.
// Ties break toward the candidate that frees the most bytes (finishing a
// branch before starting the next), then toward the smallest output register.
//
// Determinism/idempotence contract: every decision is a pure function of the
// data-dependence DAG and the nominal register sizes (candidate order and
// tie-breaks key on output register ids, never on incoming instruction
// positions), so rescheduling any topological order of the same program
// yields the same result. finalize() relies on this: a saved program re-runs
// the same passes at load time and must land on the same plan.
#include <algorithm>
#include <numeric>

#include "fixedpoint/fuse.h"
#include "fixedpoint/plan.h"

namespace tqt {

namespace {

/// Per-register buffer size under the nominal shape and the planned widths.
/// Widths and bounds are pure dataflow facts, so any topological order of
/// the same instructions yields identical figures.
std::vector<int64_t> register_nominal_bytes(const std::vector<FpInstr>& instrs,
                                            int n_registers, int input_register,
                                            int output_register) {
  const ExecPlan plan = build_exec_plan(instrs, n_registers, input_register, output_register);
  std::vector<FpRegShape> shapes;
  infer_register_shapes(instrs, n_registers, input_register, fp_nominal_input_shape(instrs),
                        shapes);
  std::vector<int64_t> bytes(static_cast<size_t>(n_registers), 0);
  for (int r = 0; r < n_registers; ++r) {
    bytes[static_cast<size_t>(r)] =
        shapes[static_cast<size_t>(r)].numel * width_bytes(plan.regs[static_cast<size_t>(r)].width);
  }
  return bytes;
}

/// Incremental mirror of the planner's best-fit slot allocator: free pool,
/// per-slot high-water marks, and the slot each live alias-family root holds.
struct SlotSim {
  std::vector<int64_t> slot_hw;
  std::vector<int> free_slots;
  std::vector<int> slot_of;  ///< per root; -1 = none

  explicit SlotSim(int n_registers) : slot_of(static_cast<size_t>(n_registers), -1) {}

  /// Arena growth if a value of `need` bytes were allocated now (best fit:
  /// free ride under a big enough free slot, else grow the biggest free
  /// slot, else open a new one).
  int64_t alloc_cost(int64_t need) const {
    if (free_slots.empty()) return need;
    int64_t max_hw = 0;
    for (int s : free_slots) max_hw = std::max(max_hw, slot_hw[static_cast<size_t>(s)]);
    return std::max<int64_t>(0, need - max_hw);
  }

  void alloc(int root, int64_t need) {
    if (free_slots.empty()) {
      slot_of[static_cast<size_t>(root)] = static_cast<int>(slot_hw.size());
      slot_hw.push_back(need);
      return;
    }
    // Same policy as plan.cpp: tightest fitting free slot, else the biggest;
    // ties resolve to the smallest slot id.
    size_t pick = 0;
    bool pick_fits = false;
    for (size_t f = 0; f < free_slots.size(); ++f) {
      const int64_t hw = slot_hw[static_cast<size_t>(free_slots[f])];
      const bool fits = hw >= need;
      bool better;
      if (f == 0) {
        better = true;
      } else if (fits != pick_fits) {
        better = fits;
      } else {
        const int64_t ph = slot_hw[static_cast<size_t>(free_slots[pick])];
        better = fits ? (hw < ph || (hw == ph && free_slots[f] < free_slots[pick]))
                      : (hw > ph || (hw == ph && free_slots[f] < free_slots[pick]));
      }
      if (better) {
        pick = f;
        pick_fits = fits;
      }
    }
    const int s = free_slots[static_cast<size_t>(pick)];
    free_slots.erase(free_slots.begin() + static_cast<std::ptrdiff_t>(pick));
    slot_hw[static_cast<size_t>(s)] = std::max(slot_hw[static_cast<size_t>(s)], need);
    slot_of[static_cast<size_t>(root)] = s;
  }

  void release(int root) {
    const int s = slot_of[static_cast<size_t>(root)];
    if (s >= 0) free_slots.push_back(s);
    slot_of[static_cast<size_t>(root)] = -1;
  }
};

}  // namespace

int64_t estimate_arena_bytes(const std::vector<FpInstr>& instrs, int n_registers,
                             int input_register, int output_register) {
  const ExecPlan plan = build_exec_plan(instrs, n_registers, input_register, output_register);
  std::vector<FpRegShape> shapes;
  infer_register_shapes(instrs, n_registers, input_register, fp_nominal_input_shape(instrs),
                        shapes);
  std::vector<int64_t> slot_bytes(static_cast<size_t>(std::max(plan.n_slots, 0)), 0);
  for (int r = 0; r < n_registers; ++r) {
    const ExecPlan::Reg& reg = plan.regs[static_cast<size_t>(r)];
    if (reg.slot < 0) continue;
    int64_t& s = slot_bytes[static_cast<size_t>(reg.slot)];
    s = std::max(s, shapes[static_cast<size_t>(r)].numel * width_bytes(reg.width));
  }
  return std::accumulate(slot_bytes.begin(), slot_bytes.end(), int64_t{0});
}

std::vector<FpInstr> schedule_program(const std::vector<FpInstr>& instrs,
                                      int n_registers, int input_register,
                                      int output_register) {
  const size_t n = instrs.size();
  if (n < 3) return instrs;

  // Data-dependence DAG over the SSA register file (each register is written
  // exactly once, so read-after-write edges are the only hazards; slots are
  // assigned after scheduling).
  std::vector<int> producer(static_cast<size_t>(n_registers), -1);
  for (size_t i = 0; i < n; ++i) producer[static_cast<size_t>(instrs[i].output)] = static_cast<int>(i);
  std::vector<int> unmet(n, 0);
  std::vector<std::vector<int>> succs(n);
  for (size_t i = 0; i < n; ++i) {
    for (int r : instrs[i].inputs) {
      const int p = producer[static_cast<size_t>(r)];
      if (p >= 0) {
        ++unmet[i];
        succs[static_cast<size_t>(p)].push_back(static_cast<int>(i));
      }
    }
  }

  // Flatten alias families, exactly as plan.cpp pass 2 forms them. The map is
  // a pure dataflow fact: any topological order assigns the same roots.
  std::vector<int> root(static_cast<size_t>(n_registers));
  std::iota(root.begin(), root.end(), 0);
  for (const FpInstr& in : instrs) {
    if (in.kind == FpInstr::Kind::kFlatten && !in.inputs.empty() &&
        in.inputs[0] != input_register) {
      root[static_cast<size_t>(in.output)] = root[static_cast<size_t>(in.inputs[0])];
    }
  }

  const std::vector<int64_t> reg_bytes =
      register_nominal_bytes(instrs, n_registers, input_register, output_register);
  std::vector<int> remaining(static_cast<size_t>(n_registers), 0);
  for (const FpInstr& in : instrs) {
    for (int r : in.inputs) ++remaining[static_cast<size_t>(root[static_cast<size_t>(r)])];
  }
  if (output_register >= 0) {
    ++remaining[static_cast<size_t>(root[static_cast<size_t>(output_register)])];  // never frees
  }

  std::vector<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (unmet[i] == 0) ready.push_back(static_cast<int>(i));
  }

  SlotSim sim(n_registers);
  std::vector<FpInstr> out;
  out.reserve(n);
  while (!ready.empty()) {
    // Canonical candidate order: smallest output register first, so equal
    // scores resolve identically regardless of incoming instruction order.
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return instrs[static_cast<size_t>(a)].output < instrs[static_cast<size_t>(b)].output;
    });
    int best = -1;
    int64_t best_cost = 0, best_freed = 0;
    for (int cand : ready) {
      const FpInstr& in = instrs[static_cast<size_t>(cand)];
      const int out_root = root[static_cast<size_t>(in.output)];
      const int64_t cost =
          out_root != in.output ? 0  // aliased flatten allocates nothing
                                : sim.alloc_cost(reg_bytes[static_cast<size_t>(in.output)]);
      int64_t freed = 0;
      for (size_t a = 0; a < in.inputs.size(); ++a) {
        const int r = in.inputs[a];
        if (r == input_register) continue;
        const int rt = root[static_cast<size_t>(r)];
        bool first = true;  // count each alias family once
        int reads = 0;
        for (size_t b = 0; b < in.inputs.size(); ++b) {
          if (root[static_cast<size_t>(in.inputs[b])] == rt) {
            ++reads;
            if (b < a) first = false;
          }
        }
        if (first && remaining[static_cast<size_t>(rt)] == reads) {
          freed += reg_bytes[static_cast<size_t>(rt)];
        }
      }
      if (best < 0 || cost < best_cost || (cost == best_cost && freed > best_freed)) {
        best = cand;
        best_cost = cost;
        best_freed = freed;
      }
    }

    const FpInstr& picked = instrs[static_cast<size_t>(best)];
    const int out_root = root[static_cast<size_t>(picked.output)];
    if (out_root == picked.output) {
      sim.alloc(out_root, reg_bytes[static_cast<size_t>(picked.output)]);
    }
    for (int r : picked.inputs) {
      if (r == input_register) continue;
      const int rt = root[static_cast<size_t>(r)];
      if (--remaining[static_cast<size_t>(rt)] == 0) sim.release(rt);
    }
    if (out_root == picked.output && remaining[static_cast<size_t>(out_root)] == 0) {
      sim.release(out_root);  // output nothing reads: release immediately
    }
    out.push_back(picked);
    ready.erase(std::find(ready.begin(), ready.end(), best));
    for (int s : succs[static_cast<size_t>(best)]) {
      if (--unmet[static_cast<size_t>(s)] == 0) ready.push_back(s);
    }
  }
  // A malformed (cyclic) stream cannot be fully scheduled; keep it as-is and
  // let the planner/executor surface the real error.
  if (out.size() != n) return instrs;
  return out;
}

}  // namespace tqt
