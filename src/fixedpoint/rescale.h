// Scale-change arithmetic shared by the reference interpreter and the typed
// kernel engine. Both paths MUST use these exact helpers: the engine's
// bit-exactness contract (typed == reference == fake-quant graph) hinges on a
// single definition of saturation and power-of-2 rescaling.
#pragma once

#include <algorithm>
#include <cstdint>

#include "tensor/ops.h"

namespace tqt::fp {

/// Clamp v into [lo, hi].
inline int64_t saturate(int64_t v, int64_t lo, int64_t hi) {
  return std::min(std::max(v, lo), hi);
}

/// Rescale an integer value from exponent `from` to exponent `to`:
/// right shift with round-half-to-even when `to > from`, exact left shift
/// otherwise. This is Eq. (16) of the paper — the whole point of power-of-2
/// scale-factors is that requantization is a bit-shift, not a multiply.
inline int64_t rescale(int64_t v, int from, int to) {
  if (to >= from) return shift_round_half_to_even(v, to - from);
  return v << (from - to);
}

}  // namespace tqt::fp
