#include "calib/calibrator.h"

#include <cmath>
#include <stdexcept>

#include "core/train.h"
#include "graph_opt/quantize_pass.h"
#include "quant/calibrate.h"

namespace tqt::calib {

namespace {
constexpr float kMinRawThreshold = 1e-7f;  // matches the offline calibrator's floor
}  // namespace

OnlineCalibrator::OnlineCalibrator(ModelKind kind,
                                   const std::map<std::string, Tensor>& pretrained,
                                   const SyntheticImageDataset& data,
                                   const QuantizeConfig& quant, int hist_bins,
                                   int64_t calib_images, uint64_t calib_seed)
    : model_(build_folded(kind, pretrained, data)) {
  qres_ = quantize_pass(model_.graph, model_.input, model_.logits, quant);
  calibrate_thresholds(model_.graph, qres_, model_.input,
                       data.calibration_batch(calib_images, calib_seed), WeightInit::kMax);
  model_.graph.set_training(false);

  // Online adaptation moves thresholds only; everything else is frozen so a
  // bounded tqt_retrain() can never drift the weights away from the deployed
  // artifact's provenance.
  for (const ParamPtr& p : model_.graph.params()) {
    if (p->group != "threshold") p->trainable = false;
  }

  // One histogram pair per non-derived activation quantizer, grouped by the
  // shared threshold parameter (merged scales calibrate jointly, §4.3).
  std::map<Param*, size_t> group_of;
  for (NodeId id : qres_.act_quants) {
    FakeQuantOp& q = fake_quant_at(model_.graph, id);
    if (q.is_derived()) continue;  // q16 accumulator/bias scales track s_w * s_x
    Param* key = q.threshold().get();
    auto [it, fresh] = group_of.try_emplace(key, groups_.size());
    if (fresh) {
      GroupStat g;
      g.param = q.threshold();
      g.name = q.threshold()->name;
      groups_.push_back(std::move(g));
    }
    LayerStat ls;
    ls.node = id;
    ls.group = it->second;
    ls.spec = q.spec();
    ls.hist = StreamingHistogram(hist_bins);
    ls.window = StreamingHistogram(hist_bins);
    layers_.push_back(std::move(ls));
    groups_[it->second].members.push_back(layers_.size() - 1);

    const size_t li = layers_.size() - 1;
    q.set_observer([this, li](const Tensor& x) {
      if (!sink_active_) return;
      if (sink_ == Sink::kCumulative) {
        layers_[li].hist.observe(x);
      } else {
        layers_[li].window.observe(x);
      }
    });
  }
  if (groups_.empty()) {
    throw std::runtime_error("calib: quantized graph has no calibratable activation quantizers");
  }
}

void OnlineCalibrator::absorb(const Tensor& batch, Sink sink) {
  if (batch.rank() != 4) {
    throw std::invalid_argument("calib: absorb expects an [N,S,S,C] batch");
  }
  sink_ = sink;
  sink_active_ = true;
  model_.graph.run({{model_.input, batch}}, qres_.quantized_output);
  sink_active_ = false;
  if (sink == Sink::kCumulative) samples_ += batch.dim(0);
}

void OnlineCalibrator::clear_cumulative() {
  for (LayerStat& l : layers_) l.hist.clear();
  samples_ = 0;
}

void OnlineCalibrator::clear_window() {
  for (LayerStat& l : layers_) l.window.clear();
}

std::vector<ThresholdUpdate> OnlineCalibrator::derive() {
  std::vector<ThresholdUpdate> ups;
  for (const GroupStat& g : groups_) {
    // A shared scale must cover every member: KL-J each member's histogram
    // on its own data and take the largest threshold (pooling would let a
    // small-range member clip the others).
    float t_new = 0.0f;
    uint64_t total = 0;
    bool any = false;
    for (size_t li : g.members) {
      const LayerStat& l = layers_[li];
      if (l.hist.count() == 0) continue;
      any = true;
      total += l.hist.count();
      float abs_max = 0.0f;
      const std::vector<float> h = l.hist.float_hist(&abs_max);
      t_new = std::max(t_new, kl_j_threshold_from_hist(h, abs_max, l.spec));
    }
    if (!any) continue;
    t_new = std::max(t_new, kMinRawThreshold);
    double above = 0.0;
    for (size_t li : g.members) {
      const LayerStat& l = layers_[li];
      above += l.hist.fraction_above(t_new) * static_cast<double>(l.hist.count());
    }
    ThresholdUpdate u;
    u.layer = g.name;
    u.old_log2t = g.param->value[0];
    u.new_log2t = std::log2(t_new);
    u.fraction_clipped = total ? above / static_cast<double>(total) : 0.0;
    u.samples = total;
    ups.push_back(std::move(u));
  }
  return ups;
}

void OnlineCalibrator::apply(const std::vector<ThresholdUpdate>& updates) {
  std::map<std::string, GroupStat*> by_name;
  for (GroupStat& g : groups_) by_name[g.name] = &g;
  for (const ThresholdUpdate& u : updates) {
    const auto it = by_name.find(u.layer);
    if (it == by_name.end()) {
      throw std::invalid_argument("calib: unknown threshold group '" + u.layer + "'");
    }
    it->second->param->value[0] = u.new_log2t;
  }
}

std::map<std::string, float> OnlineCalibrator::thresholds() const {
  std::map<std::string, float> out;
  for (const GroupStat& g : groups_) out[g.name] = g.param->value[0];
  return out;
}

void OnlineCalibrator::set_thresholds(const std::map<std::string, float>& values) {
  for (GroupStat& g : groups_) {
    const auto it = values.find(g.name);
    if (it != values.end()) g.param->value[0] = it->second;
  }
}

std::vector<ThresholdUpdate> OnlineCalibrator::calibrate_from(
    const std::vector<Tensor>& batches, int passes) {
  if (batches.empty()) {
    throw std::invalid_argument("calib: calibrate_from needs at least one batch");
  }
  if (passes < 1) passes = 1;
  std::vector<ThresholdUpdate> ups;
  for (int pass = 0; pass < passes; ++pass) {
    clear_cumulative();
    for (const Tensor& b : batches) absorb(b, Sink::kCumulative);
    ups = derive();
    apply(ups);
  }
  return ups;
}

void OnlineCalibrator::snapshot_ranges() {
  for (GroupStat& g : groups_) {
    float p = 0.0f;
    bool any = false;
    for (size_t li : g.members) {
      const LayerStat& l = layers_[li];
      if (l.hist.count() == 0) continue;
      any = true;
      p = std::max(p, l.hist.percentile(0.999));
    }
    if (!any) continue;
    g.calib_log2_p999 = std::log2(std::max(p, kMinRawThreshold));
    g.has_snapshot = true;
  }
}

std::vector<DriftStat> OnlineCalibrator::drift_stats() const {
  std::vector<DriftStat> out;
  for (const GroupStat& g : groups_) {
    uint64_t total = 0;
    double above = 0.0;
    float p = 0.0f;
    for (size_t li : g.members) {
      const LayerStat& l = layers_[li];
      if (l.window.count() == 0) continue;
      const float live_t = std::exp2(g.param->value[0]);
      total += l.window.count();
      above += l.window.fraction_above(live_t) * static_cast<double>(l.window.count());
      p = std::max(p, l.window.percentile(0.999));
    }
    if (total == 0) continue;
    DriftStat d;
    d.layer = g.name;
    d.fraction_clipped = above / static_cast<double>(total);
    const float log2_p = std::log2(std::max(p, kMinRawThreshold));
    d.range_shift_bits = g.has_snapshot ? std::fabs(log2_p - g.calib_log2_p999) : 0.0f;
    d.samples = total;
    out.push_back(std::move(d));
  }
  return out;
}

int64_t OnlineCalibrator::tqt_retrain(const SyntheticImageDataset& data, int64_t steps,
                                      uint64_t seed) {
  if (steps <= 0) return 0;
  TrainSchedule sched = default_retrain_schedule();
  sched.batch_size = 32;
  sched.epochs = static_cast<float>(steps) * static_cast<float>(sched.batch_size) /
                 static_cast<float>(data.train_size());
  sched.validate_every = 0;
  sched.restore_best = false;
  sched.seed = seed;
  const TrainResult r =
      train_graph(model_.graph, model_.input, qres_.quantized_output, data, sched);
  model_.graph.set_training(false);
  return r.steps;
}

FixedPointProgram OnlineCalibrator::compile() {
  model_.graph.set_training(false);
  return compile_fixed_point(model_.graph, model_.input, qres_.quantized_output);
}

Accuracy OnlineCalibrator::evaluate(const SyntheticImageDataset& data) {
  return evaluate_graph(model_.graph, model_.input, qres_.quantized_output, data);
}

}  // namespace tqt::calib
