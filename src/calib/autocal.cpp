#include "calib/autocal.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <utility>

#include "observe/json.h"

namespace tqt::calib {

using net::AdminOp;
using net::AdminRequest;
using net::AdminResponse;
using net::WireStatus;

namespace {

uint64_t now_us() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::string format_updates(const std::vector<ThresholdUpdate>& ups) {
  std::string out;
  char line[256];
  for (const ThresholdUpdate& u : ups) {
    std::snprintf(line, sizeof line, "%-40s  log2t %+8.4f -> %+8.4f  clipped %.4f%%\n",
                  u.layer.c_str(), u.old_log2t, u.new_log2t, u.fraction_clipped * 100.0);
    out += line;
  }
  return out;
}

}  // namespace

const char* to_string(AutocalState s) {
  switch (s) {
    case AutocalState::kIdle: return "idle";
    case AutocalState::kCollecting: return "collecting";
    case AutocalState::kCalibrating: return "calibrating";
    case AutocalState::kValidating: return "validating";
    case AutocalState::kPromoting: return "promoting";
    case AutocalState::kRolledBack: return "rolled-back";
  }
  return "?";
}

ShadowReport shadow_validate(const FixedPointProgram& candidate, const FixedPointProgram* live,
                             const std::vector<Tensor>& replay, const std::vector<Batch>& holdout,
                             double accuracy_drop_tolerance) {
  ShadowReport rep;
  ExecContext ctx;
  Tensor typed;

  rep.bit_exact = true;
  for (const Tensor& in : replay) {
    candidate.run_into(in, ctx, typed);
    const Tensor ref = candidate.run_reference(in);
    if (!typed.equals(ref)) {
      rep.bit_exact = false;
      rep.detail = "typed engine diverges from the int64 reference on a replay input";
      break;
    }
  }

  Accuracy cand_acc, live_acc;
  Tensor out;
  for (const Batch& b : holdout) {
    candidate.run_into(b.images, ctx, out);
    accumulate_topk(out, b.labels, cand_acc);
    if (live) {
      live->run_into(b.images, ctx, out);
      accumulate_topk(out, b.labels, live_acc);
    }
  }
  rep.candidate_top1 = cand_acc.top1();
  rep.live_top1 = live ? live_acc.top1() : 0.0;
  rep.accuracy_ok = !live || rep.candidate_top1 + accuracy_drop_tolerance >= rep.live_top1;
  char buf[160];
  if (!rep.accuracy_ok && rep.detail.empty()) {
    std::snprintf(buf, sizeof buf, "candidate top1 %.4f below live %.4f - tolerance %.4f",
                  rep.candidate_top1, rep.live_top1, accuracy_drop_tolerance);
    rep.detail = buf;
  } else if (rep.ok()) {
    std::snprintf(buf, sizeof buf, "bit-exact; top1 candidate %.4f, live %.4f",
                  rep.candidate_top1, rep.live_top1);
    rep.detail = buf;
  }
  return rep;
}

CalibrationService::CalibrationService(serve::InferenceServer& server,
                                       const SyntheticImageDataset& data,
                                       const std::map<std::string, Tensor>& pretrained,
                                       AutocalConfig cfg)
    : server_(server), data_(data), cfg_(std::move(cfg)) {
  const DatasetConfig& dc = data_.config();
  sample_shape_ = {dc.image_size, dc.image_size, dc.channels};

  observe::MetricsRegistry& reg = server_.metrics();
  batches_ = &reg.counter("calib.batches");
  mirrored_ = &reg.counter("calib.mirrored");
  admin_ops_ = &reg.counter("calib.admin_ops");
  calibrations_ = &reg.counter("calib.calibrations");
  promotions_ = &reg.counter("calib.promotions");
  rejections_ = &reg.counter("calib.rejections");
  rollbacks_ = &reg.counter("calib.rollbacks");
  drift_triggers_ = &reg.counter("calib.drift_triggers");
  calibrate_us_ = &reg.histogram("calib.calibrate_us");
  validate_us_ = &reg.histogram("calib.validate_us");
  promote_us_ = &reg.histogram("calib.promote_us");
  state_gauge_ = &reg.gauge("calib.state");
  samples_gauge_ = &reg.gauge("calib.samples");
  version_gauge_ = &reg.gauge("calib.live_version");
  drift_clip_ppm_ = &reg.gauge("calib.drift_clip_ppm");
  drift_range_millibits_ = &reg.gauge("calib.drift_range_millibits");

  calibrator_ = std::make_unique<OnlineCalibrator>(cfg_.kind, pretrained, data_, cfg_.quant,
                                                   cfg_.hist_bins, cfg_.calib_images,
                                                   cfg_.calib_seed);

  // Retained holdout: labeled batches for the accuracy gate, their images as
  // the bit-exactness replay set.
  const int64_t total = std::min<int64_t>(cfg_.holdout_images, data_.val_size());
  for (int64_t first = 0; first < total; first += cfg_.holdout_batch) {
    const int64_t n = std::min<int64_t>(cfg_.holdout_batch, total - first);
    holdout_.push_back(data_.val_batch(first, n));
  }
  for (size_t i = 0; i < holdout_.size() && i < 2; ++i) replay_.push_back(holdout_[i].images);

  // Deploy version 1 from the initial static calibration, then snapshot the
  // calibration-time activation ranges as the drift baseline.
  auto first_program = std::make_shared<FixedPointProgram>(calibrator_->compile());
  const uint64_t v = server_.deploy(cfg_.model, *first_program, sample_shape_);
  live_program_ = std::move(first_program);
  live_version_.store(v, std::memory_order_release);
  version_gauge_->set(static_cast<int64_t>(v));
  calibrator_->absorb(data_.calibration_batch(cfg_.calib_images, cfg_.calib_seed));
  calibrator_->snapshot_ranges();
  calibrator_->clear_cumulative();
  live_top1_.store(program_accuracy(*live_program_), std::memory_order_release);

  worker_ = std::thread([this] { worker_loop(); });
}

CalibrationService::~CalibrationService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

double CalibrationService::program_accuracy(const FixedPointProgram& p) const {
  ExecContext ctx;
  Tensor out;
  Accuracy acc;
  for (const Batch& b : holdout_) {
    p.run_into(b.images, ctx, out);
    accumulate_topk(out, b.labels, acc);
  }
  return acc.top1();
}

void CalibrationService::mirror_sample(const std::string& name, const Tensor& sample) {
  if (cfg_.mirror_every <= 0 || name != cfg_.model) return;
  // Only single samples of the lane's shape enter the ring — drift batches
  // are stacked from it assuming exactly one image per element.
  if (sample.numel() != numel_of(sample_shape_)) return;
  const int64_t n = mirror_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % cfg_.mirror_every != 0) return;
  mirrored_->inc();
  std::lock_guard<std::mutex> lk(ring_mu_);
  if (ring_.size() >= cfg_.mirror_capacity) ring_.pop_front();
  ring_.push_back(sample);  // deep copy: the caller's tensor is moved on
}

void CalibrationService::set_candidate_mutator(std::function<void(OnlineCalibrator&)> m) {
  std::lock_guard<std::mutex> lk(mu_);
  mutator_ = std::move(m);
}

void CalibrationService::handle_admin(AdminRequest&& req, DoneFn done) {
  admin_ops_->inc();
  if (req.op == AdminOp::kStatus) {
    done(WireStatus::kOk, status_json());
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      done(WireStatus::kShuttingDown, "calibration service is stopping");
      return;
    }
    if (jobs_.size() >= cfg_.max_pending_jobs) {
      done(WireStatus::kShed, "calibration job queue is full");
      return;
    }
    jobs_.push_back(Job{std::move(req), std::move(done)});
  }
  cv_.notify_one();
}

AdminResponse CalibrationService::admin_sync(const AdminRequest& req) {
  auto result = std::make_shared<std::promise<AdminResponse>>();
  std::future<AdminResponse> f = result->get_future();
  AdminRequest copy = req;
  handle_admin(std::move(copy), [result](WireStatus s, std::string msg) {
    AdminResponse r;
    r.status = s;
    r.message = std::move(msg);
    result->set_value(std::move(r));
  });
  return f.get();
}

AdminResponse CalibrationService::recalibrate_now() {
  AdminRequest req;
  req.op = AdminOp::kTrigger;
  req.model = cfg_.model;
  return admin_sync(req);
}

void CalibrationService::worker_loop() {
  const auto tick = std::chrono::milliseconds(std::max(1, cfg_.drift_check_interval_ms));
  for (;;) {
    Job job;
    bool has_job = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, tick, [&] { return stop_ || !jobs_.empty(); });
      if (!jobs_.empty()) {
        // Shutdown drains the queue with kShuttingDown instead of running
        // potentially long cycles.
        job = std::move(jobs_.front());
        jobs_.pop_front();
        has_job = true;
        if (stop_) {
          lk.unlock();
          job.done(WireStatus::kShuttingDown, "calibration service is stopping");
          continue;
        }
      } else if (stop_) {
        break;
      }
    }
    if (has_job) {
      handle_job(std::move(job));
    } else {
      drift_check();
    }
  }
}

void CalibrationService::handle_job(Job&& job) {
  try {
    switch (job.req.op) {
      case AdminOp::kCalibBatch:
        do_calib_batch(job.req, job.done);
        return;
      case AdminOp::kTrigger: {
        const CycleResult r = run_cycle("admin trigger");
        job.done(r.promoted ? WireStatus::kOk : WireStatus::kInternal, r.message);
        return;
      }
      case AdminOp::kDryRun:
        do_dry_run(job.done);
        return;
      case AdminOp::kRollback:
        do_rollback(job.done);
        return;
      case AdminOp::kSwapFile:
        do_swap_file(job.req, job.done);
        return;
      case AdminOp::kStatus:  // answered inline in handle_admin
        job.done(WireStatus::kOk, status_json());
        return;
    }
    job.done(WireStatus::kMalformed, "unknown admin op");
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_error_ = e.what();
    }
    job.done(WireStatus::kInternal, e.what());
  }
}

void CalibrationService::do_calib_batch(const AdminRequest& req, const DoneFn& done) {
  if (!req.has_batch || req.batch.rank() != 4 ||
      Shape(req.batch.shape().begin() + 1, req.batch.shape().end()) != sample_shape_) {
    done(WireStatus::kMalformed,
         "calibration batch must be [N, " + shape_to_string(sample_shape_) + "]");
    return;
  }
  calibrator_->absorb(req.batch);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (retained_batches_.size() >= cfg_.max_retained_batches) retained_batches_.pop_front();
    retained_batches_.push_back(req.batch);
  }
  batches_->inc();
  samples_.store(calibrator_->samples(), std::memory_order_release);
  samples_gauge_->set(calibrator_->samples());
  if (state() == AutocalState::kIdle) set_state(AutocalState::kCollecting);
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"absorbed\": %lld, \"samples\": %lld}",
                static_cast<long long>(req.batch.dim(0)),
                static_cast<long long>(calibrator_->samples()));
  done(WireStatus::kOk, buf);
}

void CalibrationService::do_dry_run(const DoneFn& done) {
  if (calibrator_->samples() == 0) {
    done(WireStatus::kInternal, "no calibration data absorbed yet");
    return;
  }
  // derive() is read-only: thresholds are reported, never applied.
  const std::vector<ThresholdUpdate> ups = calibrator_->derive();
  done(WireStatus::kOk, "dry run (" + std::to_string(ups.size()) + " threshold groups):\n" +
                            format_updates(ups));
}

void CalibrationService::do_rollback(const DoneFn& done) {
  if (!prev_program_) {
    done(WireStatus::kBadModel, "no previous version to roll back to");
    return;
  }
  const uint64_t v = server_.deploy(cfg_.model, *prev_program_, sample_shape_);
  live_program_ = std::move(prev_program_);
  prev_program_.reset();
  live_version_.store(v, std::memory_order_release);
  version_gauge_->set(static_cast<int64_t>(v));
  live_top1_.store(program_accuracy(*live_program_), std::memory_order_release);
  rollbacks_->inc();
  set_state(AutocalState::kRolledBack);
  done(WireStatus::kOk, "rolled back; registry version " + std::to_string(v));
}

void CalibrationService::do_swap_file(const AdminRequest& req, const DoneFn& done) {
  FixedPointProgram candidate;
  try {
    candidate = FixedPointProgram::load(req.arg);
  } catch (const ProgramIoError& e) {
    done(WireStatus::kBadModel, e.what());
    return;
  } catch (const ProgramFormatError& e) {
    done(WireStatus::kCorruptModel, e.what());
    return;
  }
  set_state(AutocalState::kValidating);
  const uint64_t t0 = now_us();
  const ShadowReport rep = shadow_validate(candidate, live_program_.get(), replay_, holdout_,
                                           cfg_.accuracy_drop_tolerance);
  validate_us_->record(now_us() - t0);
  if (!rep.ok()) {
    rejections_->inc();
    set_state(AutocalState::kRolledBack);
    done(WireStatus::kInternal, "shadow validation rejected candidate: " + rep.detail);
    return;
  }
  set_state(AutocalState::kPromoting);
  const uint64_t v = promote_program(std::move(candidate));
  if (v == 0) {
    done(WireStatus::kInternal, "post-swap check regressed; previous version reinstalled");
    return;
  }
  live_top1_.store(rep.candidate_top1, std::memory_order_release);
  set_state(AutocalState::kIdle);
  done(WireStatus::kOk, "promoted file artifact as version " + std::to_string(v) + "; " +
                            rep.detail);
}

CalibrationService::CycleResult CalibrationService::run_cycle(const char* reason,
                                                              bool enforce_min) {
  calibrations_->inc();
  ++cycle_count_;
  set_state(AutocalState::kCalibrating);

  std::vector<Tensor> batches;
  std::function<void(OnlineCalibrator&)> mutator;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batches.assign(retained_batches_.begin(), retained_batches_.end());
    mutator = mutator_;
  }
  for (const Tensor& b : drift_batches_) batches.push_back(b);
  if (batches.empty()) {
    set_state(AutocalState::kIdle);
    return {false, live_version(), "no calibration data (feed batches or enable the mirror)"};
  }
  // Drift cycles are already gated by min_window; min_samples guards the
  // operator-triggered path against calibrating off a handful of images.
  int64_t images = 0;
  for (const Tensor& b : batches) images += b.dim(0);
  if (enforce_min && images < cfg_.min_samples) {
    set_state(AutocalState::kCollecting);
    char need[96];
    std::snprintf(need, sizeof need, "insufficient calibration data (%lld < min_samples %lld)",
                  static_cast<long long>(images), static_cast<long long>(cfg_.min_samples));
    return {false, live_version(), need};
  }

  const uint64_t t0 = now_us();
  const std::map<std::string, float> saved = calibrator_->thresholds();
  std::vector<ThresholdUpdate> ups = calibrator_->calibrate_from(batches, cfg_.calib_passes);
  if (cfg_.tqt_retrain_steps > 0) {
    calibrator_->tqt_retrain(data_, cfg_.tqt_retrain_steps, cfg_.calib_seed + cycle_count_);
  }
  if (mutator) mutator(*calibrator_);
  calibrate_us_->record(now_us() - t0);

  set_state(AutocalState::kValidating);
  const uint64_t t1 = now_us();
  FixedPointProgram candidate = calibrator_->compile();
  const ShadowReport rep = shadow_validate(candidate, live_program_.get(), replay_, holdout_,
                                           cfg_.accuracy_drop_tolerance);
  validate_us_->record(now_us() - t1);
  if (!rep.ok()) {
    calibrator_->set_thresholds(saved);
    rejections_->inc();
    set_state(AutocalState::kRolledBack);
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_error_ = rep.detail;
    }
    return {false, live_version(), std::string("rejected (") + reason + "): " + rep.detail};
  }

  set_state(AutocalState::kPromoting);
  const uint64_t t2 = now_us();
  const uint64_t v = promote_program(std::move(candidate));
  promote_us_->record(now_us() - t2);
  if (v == 0) {
    calibrator_->set_thresholds(saved);
    return {false, live_version(), "post-swap check regressed; previous version reinstalled"};
  }
  calibrator_->snapshot_ranges();
  calibrator_->clear_window();
  drift_batches_.clear();
  samples_.store(calibrator_->samples(), std::memory_order_release);
  samples_gauge_->set(calibrator_->samples());
  live_top1_.store(rep.candidate_top1, std::memory_order_release);
  set_state(AutocalState::kIdle);
  char buf[192];
  std::snprintf(buf, sizeof buf, "promoted version %llu (%s, %zu batches, %zu groups); %s",
                static_cast<unsigned long long>(v), reason, batches.size(), ups.size(),
                rep.detail.c_str());
  return {true, v, buf};
}

uint64_t CalibrationService::promote_program(FixedPointProgram candidate) {
  auto cand = std::make_shared<const FixedPointProgram>(std::move(candidate));
  const uint64_t v = server_.deploy(cfg_.model, *cand, sample_shape_);

  // Post-swap check: the registry must now serve exactly the candidate. A
  // mismatch means the deployment is not what validation approved — reinstall
  // the previous live program and report the regression.
  const auto installed = server_.registry().lookup(cfg_.model);
  ExecContext ctx;
  Tensor a, b;
  installed->run_into(replay_.front(), ctx, a);
  cand->run_into(replay_.front(), ctx, b);
  if (!a.equals(b)) {
    if (live_program_) server_.deploy(cfg_.model, *live_program_, sample_shape_);
    rollbacks_->inc();
    set_state(AutocalState::kRolledBack);
    {
      std::lock_guard<std::mutex> lk(mu_);
      last_error_ = "post-swap check: installed program diverges from validated candidate";
    }
    return 0;
  }

  prev_program_ = std::move(live_program_);
  live_program_ = std::move(cand);
  live_version_.store(v, std::memory_order_release);
  version_gauge_->set(static_cast<int64_t>(v));
  promotions_->inc();
  return v;
}

void CalibrationService::drift_check() {
  std::vector<Tensor> samples;
  {
    std::lock_guard<std::mutex> lk(ring_mu_);
    if (static_cast<int64_t>(ring_.size()) < cfg_.min_window) return;
    samples.assign(ring_.begin(), ring_.end());
    ring_.clear();
  }

  // Stack the mirrored samples into batches and replay them through the
  // window sink — gauges only; the cumulative histograms stay untouched so
  // repeated checks never double-count.
  const int64_t chunk = 32;
  std::vector<Tensor> window_batches;
  for (size_t first = 0; first < samples.size(); first += chunk) {
    const int64_t n = std::min<int64_t>(chunk, static_cast<int64_t>(samples.size() - first));
    Shape bs = sample_shape_;
    bs.insert(bs.begin(), n);
    Tensor batch(bs);
    const int64_t per = samples.front().numel();
    for (int64_t i = 0; i < n; ++i) {
      const Tensor& s = samples[first + static_cast<size_t>(i)];
      std::copy(s.data(), s.data() + per, batch.data() + i * per);
    }
    window_batches.push_back(std::move(batch));
  }
  calibrator_->clear_window();
  for (const Tensor& b : window_batches) calibrator_->absorb(b, OnlineCalibrator::Sink::kWindow);

  double max_clip = 0.0;
  float max_shift = 0.0f;
  for (const DriftStat& d : calibrator_->drift_stats()) {
    max_clip = std::max(max_clip, d.fraction_clipped);
    max_shift = std::max(max_shift, d.range_shift_bits);
  }
  drift_clip_ppm_->set(static_cast<int64_t>(max_clip * 1e6));
  drift_range_millibits_->set(static_cast<int64_t>(max_shift * 1000.0f));

  if (max_clip > cfg_.drift_clip_threshold ||
      max_shift > cfg_.drift_range_bits) {
    drift_triggers_->inc();
    if (cfg_.auto_recalibrate) {
      drift_batches_ = std::move(window_batches);
      run_cycle("drift", /*enforce_min=*/false);
    }
  }
}

void CalibrationService::set_state(AutocalState s) {
  state_.store(static_cast<int>(s), std::memory_order_release);
  state_gauge_->set(static_cast<int64_t>(s));
}

std::string CalibrationService::status_json() const {
  std::string last_error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_error = last_error_;
  }
  observe::JsonWriter w;
  w.obj();
  w.kv("model", cfg_.model);
  w.kv("state", to_string(state()));
  w.kv("samples", static_cast<long long>(samples_.load(std::memory_order_acquire)));
  w.kv("live_version", static_cast<unsigned long long>(live_version()));
  w.kv("live_top1", live_top1_.load(std::memory_order_acquire));
  w.kv("calibrations", static_cast<unsigned long long>(calibrations_->value()));
  w.kv("promotions", static_cast<unsigned long long>(promotions_->value()));
  w.kv("rejections", static_cast<unsigned long long>(rejections_->value()));
  w.kv("rollbacks", static_cast<unsigned long long>(rollbacks_->value()));
  w.kv("drift_triggers", static_cast<unsigned long long>(drift_triggers_->value()));
  w.kv("mirrored", static_cast<unsigned long long>(mirrored_->value()));
  w.kv("drift_clip_ppm", static_cast<long long>(drift_clip_ppm_->value()));
  w.kv("drift_range_millibits", static_cast<long long>(drift_range_millibits_->value()));
  w.kv("last_error", last_error);
  w.end();
  return w.take();
}

}  // namespace tqt::calib
