// tqt-autocal: online calibration, shadow validation and drift-triggered
// hot-swap as a service (DESIGN.md §13).
//
//   admin frames ──► gateway ──► CalibrationService (net::AdminHandler)
//                                   │ bounded job queue
//                                   ▼
//                               worker thread ── owns the OnlineCalibrator
//                                   │ absorb → derive → apply → compile
//                                   ▼
//                               shadow validator (bit-exactness vs. the
//                               int64 reference + holdout accuracy gate)
//                                   │ pass                     │ fail
//                                   ▼                          ▼
//                               atomic hot-swap            restore old
//                               (ModelRegistry install)    thresholds
//
//   live traffic ──► ServerConfig.mirror ──► sampled ring ──► drift detector
//       (fraction-clipped + range-shift gauges; auto-triggers recalibration)
//
// State machine: idle → collecting → calibrating → validating → promoting
// (→ idle), with rolled-back entered when validation rejects a candidate or
// a post-swap check regresses. Serving never pauses: the worker thread does
// all heavy lifting off the gateway event loop, and promotion rides the
// registry's atomic program swap.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "calib/calibrator.h"
#include "net/gateway.h"
#include "serve/server.h"

namespace tqt::calib {

/// Verdict of replaying the retained holdout through a candidate program.
struct ShadowReport {
  bool bit_exact = false;     ///< typed engine == int64 reference, every input
  bool accuracy_ok = false;   ///< candidate top1 >= live top1 - tolerance
  double candidate_top1 = 0.0;
  double live_top1 = 0.0;
  std::string detail;
  bool ok() const { return bit_exact && accuracy_ok; }
};

/// Gate a candidate program before promotion: (1) every replay input must
/// execute bit-identically on the typed engine and the int64 reference
/// interpreter; (2) labeled-holdout top-1 must stay within
/// `accuracy_drop_tolerance` of the live program's (skipped when `live` is
/// null). Pure function — used by the service and directly by tests.
ShadowReport shadow_validate(const FixedPointProgram& candidate, const FixedPointProgram* live,
                             const std::vector<Tensor>& replay, const std::vector<Batch>& holdout,
                             double accuracy_drop_tolerance);

enum class AutocalState {
  kIdle = 0,
  kCollecting,
  kCalibrating,
  kValidating,
  kPromoting,
  kRolledBack,
};

const char* to_string(AutocalState s);

struct AutocalConfig {
  std::string model = "model";   ///< serving lane name
  ModelKind kind = ModelKind::kMiniVgg;
  QuantizeConfig quant;          ///< static thresholds work too; trainable
                                 ///< ones enable tqt_retrain_steps
  int hist_bins = 512;
  int64_t calib_images = 50;     ///< initial static calibration set size
  uint64_t calib_seed = 50;

  int64_t min_samples = 128;     ///< images required before a cycle runs
  int calib_passes = 2;          ///< derive/apply rounds per cycle
  int64_t tqt_retrain_steps = 0; ///< bounded threshold-only retraining (0 = off)
  double accuracy_drop_tolerance = 0.05;
  int64_t holdout_images = 96;   ///< labeled validation images retained
  int64_t holdout_batch = 32;

  int64_t mirror_every = 16;     ///< keep every Nth live sample (<= 0 disables)
  size_t mirror_capacity = 256;  ///< retained mirrored samples
  int64_t min_window = 48;       ///< mirrored samples per drift evaluation
  double drift_clip_threshold = 0.02;  ///< window fraction clipped to trigger
  float drift_range_bits = 0.75f;      ///< p99.9 log2-shift to trigger
  bool auto_recalibrate = true;  ///< drift trigger runs a full cycle
  int drift_check_interval_ms = 50;

  size_t max_retained_batches = 32;  ///< admin calibration batches kept
  size_t max_pending_jobs = 64;
};

/// The calibration service: one per serving lane. Construction builds the
/// quantized graph, runs the initial static calibration, compiles and deploys
/// the first program version, then starts the worker thread. The service
/// must outlive any Gateway routing admin frames to it and be destroyed
/// before the InferenceServer it deploys into.
class CalibrationService final : public net::AdminHandler {
 public:
  CalibrationService(serve::InferenceServer& server, const SyntheticImageDataset& data,
                     const std::map<std::string, Tensor>& pretrained, AutocalConfig cfg);
  ~CalibrationService() override;

  CalibrationService(const CalibrationService&) = delete;
  CalibrationService& operator=(const CalibrationService&) = delete;

  /// Traffic mirror: wire as ServerConfig::mirror. Cheap (one modulo, one
  /// tensor copy every mirror_every-th call), any thread.
  void mirror_sample(const std::string& name, const Tensor& sample);

  /// net::AdminHandler — routes kAdminRequest frames. kStatus answers inline;
  /// everything else is enqueued for the worker thread (kShed when the job
  /// queue is full). `done` fires exactly once, possibly from the worker.
  void handle_admin(net::AdminRequest&& req, DoneFn done) override;

  /// Synchronous admin round-trip (tests, in-process callers): enqueue and
  /// wait for the worker's answer.
  net::AdminResponse admin_sync(const net::AdminRequest& req);

  /// Force a calibrate→validate→promote cycle and wait for its outcome.
  net::AdminResponse recalibrate_now();

  /// Test hook: invoked on the worker thread after thresholds are applied and
  /// before the candidate compiles — fault injection for the rejected-
  /// candidate/rollback paths. Null clears.
  void set_candidate_mutator(std::function<void(OnlineCalibrator&)> m);

  std::string status_json() const;
  AutocalState state() const {
    return static_cast<AutocalState>(state_.load(std::memory_order_acquire));
  }
  uint64_t live_version() const { return live_version_.load(std::memory_order_acquire); }

 private:
  struct Job {
    net::AdminRequest req;
    DoneFn done;
  };
  struct CycleResult {
    bool promoted = false;
    uint64_t version = 0;
    std::string message;
  };

  void worker_loop();
  void handle_job(Job&& job);
  void do_calib_batch(const net::AdminRequest& req, const DoneFn& done);
  void do_dry_run(const DoneFn& done);
  void do_rollback(const DoneFn& done);
  void do_swap_file(const net::AdminRequest& req, const DoneFn& done);
  CycleResult run_cycle(const char* reason, bool enforce_min = true);
  /// Deploy + post-swap bit-exactness check against the registry; rolls back
  /// to the previous live program (and returns 0) on regression.
  uint64_t promote_program(FixedPointProgram candidate);
  void drift_check();
  void set_state(AutocalState s);
  double program_accuracy(const FixedPointProgram& p) const;

  serve::InferenceServer& server_;
  const SyntheticImageDataset& data_;
  AutocalConfig cfg_;
  Shape sample_shape_;

  // Worker-owned calibration state (no locking: confined to worker_ except
  // during construction, before the thread starts).
  std::unique_ptr<OnlineCalibrator> calibrator_;
  std::vector<Batch> holdout_;           ///< labeled accuracy gate
  std::vector<Tensor> replay_;           ///< unlabeled bit-exactness replay set
  std::shared_ptr<const FixedPointProgram> live_program_;
  std::shared_ptr<const FixedPointProgram> prev_program_;
  std::vector<Tensor> drift_batches_;    ///< window batches behind a trigger
  uint64_t cycle_count_ = 0;

  // Cross-thread state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  std::deque<Tensor> retained_batches_;  ///< admin-fed calibration batches
  std::function<void(OnlineCalibrator&)> mutator_;
  std::string last_error_;
  bool stop_ = false;

  std::mutex ring_mu_;
  std::deque<Tensor> ring_;              ///< mirrored live samples
  std::atomic<int64_t> mirror_seen_{0};

  std::atomic<int> state_{static_cast<int>(AutocalState::kIdle)};
  std::atomic<int64_t> samples_{0};
  std::atomic<uint64_t> live_version_{0};
  std::atomic<double> live_top1_{0.0};

  // calib.* instruments, resolved once against the server's registry.
  observe::Counter* batches_ = nullptr;
  observe::Counter* mirrored_ = nullptr;
  observe::Counter* admin_ops_ = nullptr;
  observe::Counter* calibrations_ = nullptr;
  observe::Counter* promotions_ = nullptr;
  observe::Counter* rejections_ = nullptr;
  observe::Counter* rollbacks_ = nullptr;
  observe::Counter* drift_triggers_ = nullptr;
  observe::Histogram* calibrate_us_ = nullptr;
  observe::Histogram* validate_us_ = nullptr;
  observe::Histogram* promote_us_ = nullptr;
  observe::Gauge* state_gauge_ = nullptr;
  observe::Gauge* samples_gauge_ = nullptr;
  observe::Gauge* version_gauge_ = nullptr;
  observe::Gauge* drift_clip_ppm_ = nullptr;
  observe::Gauge* drift_range_millibits_ = nullptr;

  std::thread worker_;
};

}  // namespace tqt::calib
