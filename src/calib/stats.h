// Fixed-memory streaming statistics for online calibration (tqt-autocal).
//
// StreamingHistogram accumulates |x| of activation values into a fixed number
// of equal-width bins. When a sample lands past the last bin the histogram
// *folds*: adjacent bin pairs are summed and the bin width doubles, so the
// memory footprint never grows no matter how wide the observed range gets.
//
// Folding is exact and order-independent: for any value v and width w,
// floor(floor(v/w) / 2) == floor(v / 2w), and because widths only ever scale
// by powers of two the float divisions on both paths produce identical
// significands. Two histograms fed the same multiset of values in different
// orders therefore end bit-identical — the property the calibration service
// leans on to make online recalibration reproduce an offline run exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tqt::calib {

class StreamingHistogram {
 public:
  /// `bins` must be even (folding halves pairwise); width starts at
  /// `initial_width` and only ever doubles.
  explicit StreamingHistogram(int bins = 512, float initial_width = 1.0f / 1024.0f);

  /// Absorb |x| of `n` values. Non-finite values are skipped.
  void observe(const float* x, int64_t n);
  void observe(const Tensor& t) { observe(t.data(), t.numel()); }

  /// Drop all counts; the bin width resets to the construction value.
  void clear();

  uint64_t count() const { return total_; }
  float bin_width() const { return width_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  /// Upper edge of the last bin (the histogram's current span).
  float span() const { return width_ * static_cast<float>(counts_.size()); }

  /// Fraction of observed samples with |x| > t (the bin straddling t is
  /// apportioned linearly). 0 when empty.
  double fraction_above(float t) const;

  /// Upper bin edge of the p-th quantile of |x|, p in (0, 1]. 0 when empty.
  float percentile(double p) const;

  /// Counts as floats over equal bins spanning [0, *abs_max], trimmed to the
  /// last non-empty bin — the exact input shape kl_j_threshold_from_hist
  /// expects. Returns an empty vector when no samples were observed.
  std::vector<float> float_hist(float* abs_max) const;

 private:
  void fold();

  std::vector<uint64_t> counts_;
  float width_ = 0.0f;
  float initial_width_ = 0.0f;
  uint64_t total_ = 0;
};

}  // namespace tqt::calib
