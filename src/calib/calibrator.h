// OnlineCalibrator: owns a quantized fake-quant graph for the lifetime of a
// serving lane and recomputes its activation thresholds from streamed data.
//
// Construction reproduces the offline static pipeline exactly — build_folded
// -> quantize_pass -> calibrate_thresholds — so the initial thresholds (and
// the program compiled from them) are bit-identical to an offline static
// trial with the same configuration.
//
// After that, calibration is observer-driven instead of collect-driven: each
// non-derived activation quantizer gets a FakeQuantOp observer feeding a
// fixed-memory StreamingHistogram while quantization proceeds normally, so a
// single forward pass yields per-layer statistics that account for quantized
// upstream inputs (the topological property of paper §4.2). derive() then
// runs KL-J on each histogram, taking the max across quantizers that share a
// threshold parameter (merged scales must cover every member tensor — same
// rule as the offline calibrator).
//
// Everything here is deterministic: histograms are order-independent, KL-J
// is a pure function of the histogram, and apply() writes thresholds in
// group order. Feeding the same batches to two calibrators constructed with
// the same arguments yields bit-identical compiled programs — the property
// the shadow-validation tests pin down.
//
// NOT thread-safe: the calibration service confines each instance to its
// worker thread.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "calib/stats.h"
#include "core/pipeline.h"
#include "fixedpoint/engine.h"

namespace tqt::calib {

/// One derived (not yet applied) threshold change of a shared-scale group.
struct ThresholdUpdate {
  std::string layer;            ///< threshold parameter name
  float old_log2t = 0.0f;
  float new_log2t = 0.0f;
  double fraction_clipped = 0;  ///< mass above the NEW threshold (pooled)
  uint64_t samples = 0;         ///< pooled histogram count behind the update
};

/// Drift of one group's recent-window activations vs. its calibration-time
/// snapshot.
struct DriftStat {
  std::string layer;
  double fraction_clipped = 0;   ///< window mass above the LIVE threshold
  float range_shift_bits = 0.0f; ///< |log2 p99.9(window) - log2 p99.9(calib)|
  uint64_t samples = 0;
};

class OnlineCalibrator {
 public:
  /// Builds the folded graph from pretrained FP32 state, inserts quantizers,
  /// runs the initial static calibration on `calib_images` images from the
  /// validation split, and installs the histogram observers. All non-threshold
  /// parameters are frozen — online adaptation never touches weights.
  OnlineCalibrator(ModelKind kind, const std::map<std::string, Tensor>& pretrained,
                   const SyntheticImageDataset& data, const QuantizeConfig& quant,
                   int hist_bins = 512, int64_t calib_images = 50, uint64_t calib_seed = 50);

  OnlineCalibrator(const OnlineCalibrator&) = delete;
  OnlineCalibrator& operator=(const OnlineCalibrator&) = delete;

  /// Where observed activations are routed during absorb(): the cumulative
  /// histograms calibration derives from, or the window histograms drift
  /// detection compares against the calibration-time snapshot. Outside
  /// absorb() the sink is always off, so evaluation/retraining forwards do
  /// not pollute the statistics.
  enum class Sink { kCumulative, kWindow };

  /// Forward one unlabeled image batch [N,S,S,C] through the quantized graph,
  /// feeding every layer histogram of the chosen sink.
  void absorb(const Tensor& batch, Sink sink = Sink::kCumulative);

  /// Images absorbed into the cumulative sink since the last clear.
  int64_t samples() const { return samples_; }

  void clear_cumulative();
  void clear_window();

  /// KL-J thresholds from the cumulative histograms; groups with no data are
  /// omitted (their thresholds stay put). Does not modify the graph.
  std::vector<ThresholdUpdate> derive();

  /// Write derived thresholds into the shared parameters.
  void apply(const std::vector<ThresholdUpdate>& updates);

  /// Current log2 thresholds keyed by parameter name (save/restore for the
  /// rejected-candidate rollback path).
  std::map<std::string, float> thresholds() const;
  void set_thresholds(const std::map<std::string, float>& values);

  /// Full calibration: `passes` rounds of { clear cumulative, absorb every
  /// batch, derive, apply }. Multiple passes re-observe under the thresholds
  /// of the previous round, converging toward the offline topological
  /// calibration. Returns the updates of the final pass.
  std::vector<ThresholdUpdate> calibrate_from(const std::vector<Tensor>& batches, int passes);

  /// Record each group's current log2 p99.9 (from the cumulative histograms)
  /// as the drift baseline. Call after a successful calibration.
  void snapshot_ranges();

  /// Drift of the window histograms vs. the live thresholds and the
  /// snapshot; groups with no window data are omitted.
  std::vector<DriftStat> drift_stats() const;

  /// Bounded TQT threshold-only retraining (weights are frozen at
  /// construction): roughly `steps` optimizer steps on the dataset's train
  /// split. Returns the number of steps actually run.
  int64_t tqt_retrain(const SyntheticImageDataset& data, int64_t steps, uint64_t seed);

  /// Compile the current thresholds into a fixed-point program.
  FixedPointProgram compile();

  /// Fake-quant graph accuracy over the full validation split.
  Accuracy evaluate(const SyntheticImageDataset& data);

  Graph& graph() { return model_.graph; }
  NodeId input() const { return model_.input; }
  NodeId quantized_output() const { return qres_.quantized_output; }
  size_t group_count() const { return groups_.size(); }

 private:
  struct LayerStat {
    NodeId node = kNoNode;
    size_t group = 0;
    QuantSpec spec;
    StreamingHistogram hist;    ///< cumulative (calibration) sink
    StreamingHistogram window;  ///< recent-window (drift) sink
  };
  struct GroupStat {
    ParamPtr param;
    std::string name;
    std::vector<size_t> members;      ///< indices into layers_
    float calib_log2_p999 = 0.0f;
    bool has_snapshot = false;
  };

  BuiltModel model_;
  QuantizePassResult qres_;
  std::vector<LayerStat> layers_;
  std::vector<GroupStat> groups_;
  int64_t samples_ = 0;
  bool sink_active_ = false;
  Sink sink_ = Sink::kCumulative;
};

}  // namespace tqt::calib
