#include "calib/stats.h"

#include <cmath>
#include <stdexcept>

namespace tqt::calib {

StreamingHistogram::StreamingHistogram(int bins, float initial_width) {
  if (bins < 2 || (bins % 2) != 0) {
    throw std::invalid_argument("StreamingHistogram: bins must be even and >= 2");
  }
  if (!(initial_width > 0.0f)) {
    throw std::invalid_argument("StreamingHistogram: initial width must be positive");
  }
  counts_.assign(static_cast<size_t>(bins), 0);
  width_ = initial_width_ = initial_width;
}

void StreamingHistogram::fold() {
  const size_t half = counts_.size() / 2;
  for (size_t i = 0; i < half; ++i) counts_[i] = counts_[2 * i] + counts_[2 * i + 1];
  for (size_t i = half; i < counts_.size(); ++i) counts_[i] = 0;
  width_ *= 2.0f;
}

void StreamingHistogram::observe(const float* x, int64_t n) {
  const int64_t bins = static_cast<int64_t>(counts_.size());
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (!std::isfinite(a)) continue;
    int64_t idx = static_cast<int64_t>(static_cast<double>(a) / width_);
    while (idx >= bins) {
      fold();
      idx = static_cast<int64_t>(static_cast<double>(a) / width_);
    }
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
  }
}

void StreamingHistogram::clear() {
  counts_.assign(counts_.size(), 0);
  width_ = initial_width_;
  total_ = 0;
}

double StreamingHistogram::fraction_above(float t) const {
  if (total_ == 0) return 0.0;
  if (t <= 0.0f) return 1.0;
  double above = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo = static_cast<double>(i) * width_;
    const double hi = lo + width_;
    if (lo >= t) {
      above += static_cast<double>(counts_[i]);
    } else if (hi > t) {
      above += static_cast<double>(counts_[i]) * (hi - t) / width_;
    }
  }
  return above / static_cast<double>(total_);
}

float StreamingHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0f;
  if (p <= 0.0) p = 1e-12;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= rank) return static_cast<float>(i + 1) * width_;
  }
  return span();
}

std::vector<float> StreamingHistogram::float_hist(float* abs_max) const {
  size_t last = 0;
  bool any = false;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      last = i;
      any = true;
    }
  }
  if (!any) {
    if (abs_max) *abs_max = 0.0f;
    return {};
  }
  std::vector<float> hist(last + 1);
  for (size_t i = 0; i <= last; ++i) hist[i] = static_cast<float>(counts_[i]);
  if (abs_max) *abs_max = static_cast<float>(last + 1) * width_;
  return hist;
}

}  // namespace tqt::calib
