#include "opt/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace tqt {

float LrSchedule::at(int64_t step) const {
  if (period <= 0 || decay == 1.0f) return base;
  const double exponent = staircase ? static_cast<double>(step / period)
                                    : static_cast<double>(step) / static_cast<double>(period);
  return static_cast<float>(base * std::pow(static_cast<double>(decay), exponent));
}

Optimizer::Optimizer(std::vector<ParamPtr> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    if (!p) throw std::invalid_argument("Optimizer: null param");
  }
}

void Optimizer::set_group_schedule(const std::string& group, LrSchedule sched) {
  group_sched_[group] = sched;
}

float Optimizer::lr_for(const Param& p) const {
  auto it = group_sched_.find(p.group);
  const LrSchedule& s = it != group_sched_.end() ? it->second : default_sched_;
  return s.at(step_);
}

void Optimizer::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    if (!p.trainable) continue;
    update(p, lr_for(p), i);
  }
  ++step_;
}

// ---- SGD -------------------------------------------------------------------

Sgd::Sgd(std::vector<ParamPtr> params, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::update(Param& p, float lr, size_t slot) {
  if (momentum_ != 0.0f) {
    Tensor& v = velocity_[slot];
    v *= momentum_;
    v.add_scaled(p.grad, 1.0f);
    p.value.add_scaled(v, -lr);
  } else {
    p.value.add_scaled(p.grad, -lr);
  }
}

// ---- Adam ------------------------------------------------------------------

Adam::Adam(std::vector<ParamPtr> params, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::update(Param& p, float lr, size_t slot) {
  Tensor& m = m_[slot];
  Tensor& v = v_[slot];
  const double t = static_cast<double>(step_ + 1);
  const float bc1 = static_cast<float>(1.0 - std::pow(static_cast<double>(beta1_), t));
  const float bc2 = static_cast<float>(1.0 - std::pow(static_cast<double>(beta2_), t));
  for (int64_t i = 0; i < p.value.numel(); ++i) {
    const float g = p.grad[i];
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    p.value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

// ---- RMSprop ---------------------------------------------------------------

RmsProp::RmsProp(std::vector<ParamPtr> params, float beta2, float eps)
    : Optimizer(std::move(params)), beta2_(beta2), eps_(eps) {
  v_.reserve(params_.size());
  for (const auto& p : params_) v_.emplace_back(p->value.shape());
}

void RmsProp::update(Param& p, float lr, size_t slot) {
  Tensor& v = v_[slot];
  for (int64_t i = 0; i < p.value.numel(); ++i) {
    const float g = p.grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
    p.value[i] -= lr * g / (std::sqrt(v[i]) + eps_);
  }
}

// ---- Normed SGD (paper Eqs. 17-18) ------------------------------------------

NormedSgd::NormedSgd(std::vector<ParamPtr> params, float beta2, float eps, bool tanh_clip)
    : Optimizer(std::move(params)), beta2_(beta2), eps_(eps), tanh_clip_(tanh_clip) {
  v_.reserve(params_.size());
  for (const auto& p : params_) v_.emplace_back(p->value.shape());
}

void NormedSgd::update(Param& p, float lr, size_t slot) {
  Tensor& v = v_[slot];
  const double t = static_cast<double>(step_ + 1);
  const float bc2 = static_cast<float>(1.0 - std::pow(static_cast<double>(beta2_), t));
  for (int64_t i = 0; i < p.value.numel(); ++i) {
    const float g = p.grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
    const float v_hat = v[i] / bc2;
    float normed = g / (std::sqrt(v_hat) + eps_);
    if (tanh_clip_) normed = std::tanh(normed);
    p.value[i] -= lr * normed;
  }
}

}  // namespace tqt
