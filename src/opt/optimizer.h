// Optimizers and learning-rate schedules.
//
// The paper trains weights and thresholds simultaneously but with different
// learning rates and decay schedules (§5.2: Adam for both, lr 1e-2 for
// thresholds / 1e-6 for weights, exponential staircase decay). Parameters
// carry a `group` tag ("weight", "bias", "bn", "threshold") and the optimizer
// resolves each parameter's schedule through its group.
//
// Appendix B motivates two extra optimizers used by the convergence
// benchmarks (Figure 8): plain SGD (which fails on raw/log threshold
// gradients) and SGD on *normed* gradients (Eqs. 17-18), which normalizes
// each gradient by a bias-corrected EMA of its variance and squashes through
// tanh — reproducing Adam's scale invariance without momentum.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/op.h"

namespace tqt {

/// Exponentially decayed learning rate with optional staircase quantization:
/// lr(step) = base * decay^(step/period)   (floor division when staircase).
struct LrSchedule {
  float base = 1e-3f;
  float decay = 1.0f;
  int64_t period = 0;  // 0 disables decay
  bool staircase = true;

  float at(int64_t step) const;

  static LrSchedule constant(float lr) { return {lr, 1.0f, 0, true}; }
};

/// Base optimizer: owns the parameter list and per-group schedules.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamPtr> params);
  virtual ~Optimizer() = default;

  /// Set the schedule for parameters whose group matches `group`.
  void set_group_schedule(const std::string& group, LrSchedule sched);
  /// Fallback schedule for groups without an explicit entry.
  void set_default_schedule(LrSchedule sched) { default_sched_ = sched; }

  /// Apply one update from the accumulated gradients, then advance the step
  /// counter. Parameters with trainable == false are skipped.
  void step();

  int64_t step_count() const { return step_; }
  const std::vector<ParamPtr>& params() const { return params_; }

 protected:
  /// Per-parameter update rule; `lr` already resolved from the schedule,
  /// `slot` is a stable per-parameter state index.
  virtual void update(Param& p, float lr, size_t slot) = 0;

  float lr_for(const Param& p) const;

  std::vector<ParamPtr> params_;
  std::map<std::string, LrSchedule> group_sched_;
  LrSchedule default_sched_ = LrSchedule::constant(1e-3f);
  int64_t step_ = 0;
};

/// Vanilla SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<ParamPtr> params, float momentum = 0.0f);

 private:
  void update(Param& p, float lr, size_t slot) override;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2014) with bias correction — the optimizer the paper
/// recommends for log-threshold training (Appendix B.2).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamPtr> params, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  float beta1() const { return beta1_; }
  float beta2() const { return beta2_; }

 private:
  void update(Param& p, float lr, size_t slot) override;
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
};

/// RMSprop (Hinton 2012): EMA of squared gradients, no momentum.
class RmsProp final : public Optimizer {
 public:
  RmsProp(std::vector<ParamPtr> params, float beta2 = 0.999f, float eps = 1e-8f);

 private:
  void update(Param& p, float lr, size_t slot) override;
  float beta2_, eps_;
  std::vector<Tensor> v_;
};

/// SGD on normed gradients (paper Eqs. 17-18): g~ = tanh(g / sqrt(v_hat+eps))
/// where v_hat is the bias-corrected EMA of g^2. |g~| <= 1 by construction,
/// so with lr << 1 threshold oscillations stay within one integer bin
/// (Appendix B.3).
class NormedSgd final : public Optimizer {
 public:
  NormedSgd(std::vector<ParamPtr> params, float beta2 = 0.999f, float eps = 1e-8f,
            bool tanh_clip = true);

 private:
  void update(Param& p, float lr, size_t slot) override;
  float beta2_, eps_;
  bool tanh_clip_;
  std::vector<Tensor> v_;
};

}  // namespace tqt
