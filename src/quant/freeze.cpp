#include "quant/freeze.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tqt {

ThresholdFreezer::ThresholdFreezer(std::vector<ParamPtr> thresholds, int64_t start_step,
                                   int64_t interval, float ema_beta)
    : start_step_(start_step), interval_(interval), beta_(ema_beta) {
  if (interval_ <= 0) throw std::invalid_argument("ThresholdFreezer: interval must be positive");
  states_.reserve(thresholds.size());
  for (auto& p : thresholds) {
    if (!p) throw std::invalid_argument("ThresholdFreezer: null param");
    if (p->value.numel() != 1) throw std::invalid_argument("ThresholdFreezer: thresholds must be scalar");
    states_.push_back({std::move(p), 0.0f, 0.0f, false, false});
  }
}

void ThresholdFreezer::observe(int64_t step) {
  for (State& s : states_) {
    if (s.frozen) continue;
    const float v = s.param->value[0];
    const float g = std::fabs(s.param->grad[0]);
    if (!s.initialized) {
      s.ema_value = v;
      s.ema_grad_abs = g;
      s.initialized = true;
    } else {
      s.ema_value = beta_ * s.ema_value + (1.0f - beta_) * v;
      s.ema_grad_abs = beta_ * s.ema_grad_abs + (1.0f - beta_) * g;
    }
  }
  if (step < start_step_) return;
  if ((step - start_step_) % interval_ != 0) return;

  // Freeze the eligible threshold with the smallest EMA |gradient|.
  State* best = nullptr;
  for (State& s : states_) {
    if (s.frozen || !s.initialized) continue;
    // "Correct side of log2 t*": current value rounds (ceil) into the same
    // integer bin as its EMA, i.e. the side it spends most of its time on.
    if (std::ceil(s.param->value[0]) != std::ceil(s.ema_value)) continue;
    if (!best || s.ema_grad_abs < best->ema_grad_abs) best = &s;
  }
  if (best) {
    best->frozen = true;
    best->param->trainable = false;
  }
}

int64_t ThresholdFreezer::frozen_count() const {
  int64_t n = 0;
  for (const State& s : states_)
    if (s.frozen) ++n;
  return n;
}

}  // namespace tqt
