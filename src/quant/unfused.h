// Unfused reference implementation of the TQT quantizer (paper Figure 4).
//
// Graffitist ships *fused* quantization kernels because the naive composition
// of primitive ops (pow2/ceil on the threshold, scale, round with
// stop-gradient, saturate, de-quant) materializes several intermediate
// tensors that autograd must keep alive for the backward pass, inflating
// training memory and limiting batch size (§4.4). This class reproduces that
// naive composition faithfully — every intermediate a TensorFlow graph would
// cache is cached here — so the fused/unfused comparison of Figure 4 can be
// measured, and so tests can assert the two implementations are numerically
// identical in both directions.
#pragma once

#include <utility>

#include "nn/op.h"
#include "quant/quant_spec.h"

namespace tqt {

class UnfusedFakeQuantOp final : public Op {
 public:
  /// Per-tensor power-of-2 spec only — the unfused composition exists to
  /// mirror the paper's Figure 4 TQT kernel.
  UnfusedFakeQuantOp(const QuantSpec& spec, ParamPtr log2_threshold);

  /// Deprecated pre-QuantSpec signature, kept as a thin wrapper.
  [[deprecated("pass a QuantSpec instead of QuantBits")]]
  UnfusedFakeQuantOp(QuantBits bits, ParamPtr log2_threshold)
      : UnfusedFakeQuantOp(QuantSpec{bits.bits, bits.is_signed}, std::move(log2_threshold)) {}

  std::string type() const override { return "UnfusedFakeQuant"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;
  std::vector<ParamPtr> params() override { return {threshold_}; }

  /// Bytes of intermediate state cached between forward and backward — the
  /// quantity Figure 4's fused kernels exist to eliminate.
  int64_t cached_bytes() const;

 private:
  QuantBits bits_;
  ParamPtr threshold_;

  // The intermediates the unfused graph keeps alive (Figure 4, training
  // form): scaled input, rounded value (via the STE stop-gradient trick),
  // saturation mask, saturated value.
  Tensor x_scaled_;
  Tensor x_rounded_;
  Tensor sat_mask_;
  Tensor x_saturated_;
  float s_used_ = 1.0f;
};

}  // namespace tqt
