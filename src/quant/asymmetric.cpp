#include "quant/asymmetric.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace tqt {

ParamPtr make_range(const std::string& name, float min, float max, bool trainable) {
  if (!(min < max)) throw std::invalid_argument("make_range: need min < max");
  return std::make_shared<Param>(name, Tensor({2}, {min, max}), "threshold", trainable);
}

AsymmetricFakeQuantOp::AsymmetricFakeQuantOp(const QuantSpec& spec, ParamPtr range)
    : bits_(spec.bits), range_(std::move(range)) {
  spec.validate();
  if (spec.per_channel()) throw std::invalid_argument("AsymFakeQuant: per-tensor only");
  if (spec.power_of_2) {
    throw std::invalid_argument("AsymFakeQuant: affine scale cannot be power-of-2 constrained");
  }
  if (!range_ || range_->value.numel() != 2) {
    throw std::invalid_argument("AsymFakeQuant: range must be a {min,max} pair");
  }
}

void AsymmetricFakeQuantOp::set_range(ParamPtr range) {
  if (!range || range->value.numel() != 2) {
    throw std::invalid_argument("set_range: range must be a {min,max} pair");
  }
  range_ = std::move(range);
}

float AsymmetricFakeQuantOp::scale() const {
  const float min = range_->value[0];
  const float max = range_->value[1];
  const float levels = static_cast<float>((int64_t{1} << bits_) - 1);
  return std::max((max - min) / levels, 1e-12f);
}

int64_t AsymmetricFakeQuantOp::zero_point() const {
  const float s = scale();
  const int64_t levels = (int64_t{1} << bits_) - 1;
  int64_t z = static_cast<int64_t>(round_half_to_even(-range_->value[0] / s));
  return std::min(std::max<int64_t>(z, 0), levels);
}

Tensor AsymmetricFakeQuantOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  x_ = x;
  if (!enabled_ || collect_) {
    if (collect_) collected_.insert(collected_.end(), x.vec().begin(), x.vec().end());
    bypassed_ = true;
    return x;
  }
  bypassed_ = false;
  s_used_ = scale();
  z_used_ = zero_point();
  const float hi = static_cast<float>((int64_t{1} << bits_) - 1);
  Tensor y(x.shape());
  const float s = s_used_;
  const float z = static_cast<float>(z_used_);
  parallel_for(0, x.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float q = round_half_to_even(x[i] / s) + z;
      q = std::min(std::max(q, 0.0f), hi);
      y[i] = (q - z) * s;
    }
  });
  return y;
}

std::vector<Tensor> AsymmetricFakeQuantOp::backward(const Tensor& g) {
  if (bypassed_) return {g};
  const float hi = static_cast<float>((int64_t{1} << bits_) - 1);
  Tensor dx(g.shape());
  // {dmin, dmax} reduce together; deterministic chunking keeps both range
  // gradients thread-count independent.
  const std::array<double, 2> dr = parallel_reduce<std::array<double, 2>>(
      0, g.numel(), kElementGrain, {0.0, 0.0},
      [&](int64_t i0, int64_t i1) {
        std::array<double, 2> local = {0.0, 0.0};
        for (int64_t i = i0; i < i1; ++i) {
          const float q = round_half_to_even(x_[i] / s_used_) + static_cast<float>(z_used_);
          if (q < 0.0f) {
            local[0] += g[i];  // below range: gradient flows to min (TF FakeQuant)
          } else if (q > hi) {
            local[1] += g[i];
          } else {
            dx[i] = g[i];
          }
        }
        return local;
      },
      [](std::array<double, 2> a, std::array<double, 2> b) {
        return std::array<double, 2>{a[0] + b[0], a[1] + b[1]};
      });
  if (range_->trainable) {
    range_->grad[0] += static_cast<float>(dr[0]);
    range_->grad[1] += static_cast<float>(dr[1]);
  }
  return {dx};
}

}  // namespace tqt
