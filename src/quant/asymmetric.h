// Asymmetric (affine) fake quantizer with a zero-point — the quantization
// scheme of TensorFlow's QAT / gemmlowp that the paper compares against in
// Table 1 ("per-tensor, asymmetric, real scaling") and Appendix A (the cost
// of cross-terms). TQT deliberately avoids this scheme; it exists here as a
// faithful baseline:
//
//    s = (max - min) / (2^b - 1),  z = round(-min / s) clipped to [0, 2^b-1]
//    q(x) = ( clip(round(x/s) + z, 0, 2^b - 1) - z ) * s
//
// The backward pass follows TF's FakeQuantWithMinMaxVars: straight-through
// for in-range x, and *clipped* gradients for the min/max range parameters
// (gradient flows to min below the range and to max above it) — the
// formulation §3.5 shows can only expand the range.
#pragma once

#include <utility>

#include "nn/op.h"
#include "quant/quant_spec.h"

namespace tqt {

class AsymmetricFakeQuantOp final : public Op {
 public:
  /// `range` holds {min, max} as a 2-element tensor (group "threshold").
  /// The spec must be per-tensor with power_of_2 = false — an affine
  /// quantizer's scale is (max-min)/(2^b-1) by construction; signedness is
  /// ignored (the zero-point places the levels).
  AsymmetricFakeQuantOp(const QuantSpec& spec, ParamPtr range);

  /// Deprecated pre-QuantSpec signature, kept as a thin wrapper.
  [[deprecated("pass a QuantSpec instead of a raw bit count")]]
  AsymmetricFakeQuantOp(int bits, ParamPtr range)
      : AsymmetricFakeQuantOp(QuantSpec{bits, false, -1, false}, std::move(range)) {}

  std::string type() const override { return "AsymFakeQuant"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;
  std::vector<ParamPtr> params() override { return {range_}; }

  int bits() const { return bits_; }
  const ParamPtr& range() const { return range_; }
  /// Replace the range parameter (scale merging for concat inputs).
  void set_range(ParamPtr range);
  float scale() const;
  /// Zero-point: the integer level that represents real 0 exactly.
  int64_t zero_point() const;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  void set_collect(bool collect) { collect_ = collect; }
  const std::vector<float>& collected() const { return collected_; }
  void clear_collected() { collected_.clear(); }

 private:
  int bits_;
  ParamPtr range_;
  bool enabled_ = true;
  bool collect_ = false;
  std::vector<float> collected_;

  Tensor x_;
  float s_used_ = 1.0f;
  int64_t z_used_ = 0;
  bool bypassed_ = false;
};

/// {min, max} range parameter helper.
ParamPtr make_range(const std::string& name, float min, float max, bool trainable = true);

}  // namespace tqt
