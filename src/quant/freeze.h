// Incremental threshold freezing (paper §5.2).
//
// With power-of-2 scaling a converged threshold oscillates around a critical
// integer log2 t* (Appendix B.3). Every crossing changes downstream
// activation distributions, so Graffitist's training scripts incrementally
// freeze thresholds: starting at `start_step`, once every `interval` steps,
// the unfrozen threshold with the smallest EMA |gradient| is frozen if its
// current value sits on the "correct" side of its critical integer
// (i.e. in the same integer bin as its EMA).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/op.h"

namespace tqt {

class ThresholdFreezer {
 public:
  /// thresholds: the log2-threshold parameters to manage (group "threshold").
  ThresholdFreezer(std::vector<ParamPtr> thresholds, int64_t start_step, int64_t interval,
                   float ema_beta = 0.9f);

  /// Call once per training step, after the optimizer step, with the step
  /// index and before gradients are zeroed (grad EMAs read Param::grad).
  void observe(int64_t step);

  int64_t frozen_count() const;
  int64_t total() const { return static_cast<int64_t>(states_.size()); }
  bool all_frozen() const { return frozen_count() == total(); }

 private:
  struct State {
    ParamPtr param;
    float ema_value = 0.0f;
    float ema_grad_abs = 0.0f;
    bool initialized = false;
    bool frozen = false;
  };
  std::vector<State> states_;
  int64_t start_step_;
  int64_t interval_;
  float beta_;
};

}  // namespace tqt
