#include "quant/toy_model.h"

#include <cmath>
#include <stdexcept>

#include "opt/optimizer.h"
#include "tensor/ops.h"

namespace tqt {

namespace {
constexpr float kLn2 = 0.69314718055994530942f;
}

QuantizerCurves transfer_curves(QuantBits bits, QuantMode mode, float log2_t, float lo, float hi,
                                int points) {
  if (points < 2) throw std::invalid_argument("transfer_curves: points must be >= 2");
  QuantizerCurves c;
  const Tensor xs = Tensor::linspace(lo, hi, points);
  const float s = std::exp2(static_cast<float>(static_cast<int>(std::ceil(log2_t)) - bits.scale_shift()));
  const float n = static_cast<float>(bits.qmin());
  const float p = static_cast<float>(bits.qmax());
  for (int64_t i = 0; i < xs.numel(); ++i) {
    const float x = xs[i];
    const float xs_ratio = x / s;
    const float r = round_half_to_even(xs_ratio);
    const float rq = std::min(std::max(r, n), p);
    const float q = rq * s;
    const bool inside = (r >= n && r <= p);
    float dq_dx = inside ? 1.0f : 0.0f;
    float local;
    if (inside) {
      local = (mode == QuantMode::kClipped) ? 0.0f : s * kLn2 * (r - xs_ratio);
    } else {
      local = s * kLn2 * (r < n ? n : p);
    }
    const float err = q - x;
    c.x.push_back(x);
    c.q.push_back(q);
    c.dq_dx.push_back(dq_dx);
    c.dq_dlog2t.push_back(local);
    c.dl_dx.push_back(err * (dq_dx - 1.0f));  // Eq. (10)
    c.dl_dlog2t.push_back(err * local);       // Eq. (9)
  }
  return c;
}

ToyEval toy_l2_eval(const Tensor& x, QuantBits bits, QuantMode mode, float log2_t) {
  const float s = std::exp2(static_cast<float>(static_cast<int>(std::ceil(log2_t)) - bits.scale_shift()));
  const float n = static_cast<float>(bits.qmin());
  const float p = static_cast<float>(bits.qmax());
  ToyEval e;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float xs_ratio = x[i] / s;
    const float r = round_half_to_even(xs_ratio);
    const float rq = std::min(std::max(r, n), p);
    const float q = rq * s;
    const float err = q - x[i];
    e.loss += 0.5 * static_cast<double>(err) * err;
    float local;
    if (r < n) {
      local = s * kLn2 * n;
    } else if (r > p) {
      local = s * kLn2 * p;
    } else {
      local = (mode == QuantMode::kClipped) ? 0.0f : s * kLn2 * (r - xs_ratio);
    }
    e.grad_log2_t += static_cast<double>(err) * local;
  }
  const double t = std::exp2(static_cast<double>(log2_t));
  e.grad_raw_t = e.grad_log2_t / (t * kLn2);
  return e;
}

ToyRunResult run_toy_training(const ToyRunConfig& cfg, ToyOptimizer opt) {
  Rng rng(cfg.seed);
  ToyRunResult res;
  res.log2_t.reserve(static_cast<size_t>(cfg.steps));
  res.grad.reserve(static_cast<size_t>(cfg.steps));

  auto th = make_threshold("toy/log2_t", cfg.log2_t0);
  std::unique_ptr<Optimizer> optimizer;
  switch (opt) {
    case ToyOptimizer::kRawSgd:
    case ToyOptimizer::kLogSgd:
      optimizer = std::make_unique<Sgd>(std::vector<ParamPtr>{th});
      break;
    case ToyOptimizer::kNormedLogSgd:
      optimizer = std::make_unique<NormedSgd>(std::vector<ParamPtr>{th}, cfg.beta2);
      break;
    case ToyOptimizer::kLogAdam:
      optimizer = std::make_unique<Adam>(std::vector<ParamPtr>{th}, cfg.beta1, cfg.beta2);
      break;
  }
  optimizer->set_default_schedule(LrSchedule::constant(cfg.lr));

  for (int step = 0; step < cfg.steps; ++step) {
    const Tensor x = rng.normal_tensor({cfg.batch}, 0.0f, cfg.sigma);
    const ToyEval e = toy_l2_eval(x, cfg.bits, cfg.mode, th->value[0]);
    th->zero_grad();
    if (opt == ToyOptimizer::kRawSgd) {
      // Raw-threshold SGD: update t, then map back to log2 t. If the update
      // would make t non-positive the run has diverged (the failure mode of
      // B.1); clamp to a tiny value so the trajectory records the collapse.
      const double t = std::exp2(static_cast<double>(th->value[0]));
      const double t_new = std::max(t - static_cast<double>(cfg.lr) * e.grad_raw_t, 1e-30);
      th->value[0] = static_cast<float>(std::log2(t_new));
      res.grad.push_back(static_cast<float>(e.grad_raw_t));
    } else {
      th->grad[0] = static_cast<float>(e.grad_log2_t);
      optimizer->step();
      res.grad.push_back(static_cast<float>(e.grad_log2_t));
    }
    res.log2_t.push_back(th->value[0]);
  }
  res.final_log2_t = res.log2_t.back();

  // Gradient ratio r_g = -g_low / g_high around the critical integer the
  // threshold converged to (Appendix C): gradients are piecewise constant in
  // log2 t between integers (power-of-2 scaling), so evaluating mid-bin on a
  // large fixed batch characterizes the bang-bang dynamics exactly.
  const float crit = std::round(res.final_log2_t);
  Rng probe_rng(cfg.seed ^ 0xabcdef);
  const Tensor probe = probe_rng.normal_tensor({50000}, 0.0f, cfg.sigma);
  const double g_low = toy_l2_eval(probe, cfg.bits, cfg.mode, crit - 0.5f).grad_log2_t;
  const double g_high = toy_l2_eval(probe, cfg.bits, cfg.mode, crit + 0.5f).grad_log2_t;
  if (g_low < 0.0 && g_high > 0.0) {
    res.empirical_rg = static_cast<float>(-g_low / g_high);
  }
  return res;
}

}  // namespace tqt
