// Threshold calibration: choosing the raw clipping threshold t of a
// quantization layer from observed data (paper Table 2 and §4.2).
//
//   MAX         max |x|                       (weights, static & wt-retrain)
//   3SD         3 standard deviations         (weights, TQT wt+th retrain)
//   percentile  p-th percentile of |x|        (FAQ-style; offered as option)
//   KL-J        minimizer of the symmetric Kullback-Leibler-J distance
//               between the original and quantized distributions
//               (activations; D'Alberto & Dasdan 2009, TensorRT-style)
//
// All functions return the *raw* threshold t > 0; callers store log2(t).
#pragma once

#include <span>
#include <vector>

#include "quant/quant_spec.h"
#include "tensor/tensor.h"

namespace tqt {

/// max |x|; returns a tiny positive floor if the data is all-zero.
float max_threshold(std::span<const float> values);

/// n_sd standard deviations of the raw distribution (not of |x|).
float sd_threshold(std::span<const float> values, float n_sd = 3.0f);

/// pct-th percentile (in [0,100]) of |x|.
float percentile_threshold(std::span<const float> values, float pct = 99.9f);

/// KL-J calibration on a histogram of |x|:
///   hist  counts over `hist.size()` equal bins spanning [0, abs_max]
///   spec  target precision; the quantized distribution has qmax+1
///         magnitude levels
/// Scans candidate thresholds (bin edges) and returns the t minimizing
///   J(P, Q) = KL(P||Q) + KL(Q||P)
/// where P is the clipped reference distribution and Q the
/// collapse-and-expand quantized approximation.
float kl_j_threshold_from_hist(const std::vector<float>& hist, float abs_max,
                               const QuantSpec& spec);

/// Convenience: histogram `values` (default 2048 bins, the TensorRT choice —
/// fewer bins under-resolve the bulk against far outliers) then run KL-J.
float kl_j_threshold(std::span<const float> values, const QuantSpec& spec, int bins = 2048);

/// Deprecated pre-QuantSpec signatures, kept as thin wrappers.
[[deprecated("pass a QuantSpec instead of QuantBits")]]
inline float kl_j_threshold_from_hist(const std::vector<float>& hist, float abs_max,
                                      QuantBits bits) {
  return kl_j_threshold_from_hist(hist, abs_max, QuantSpec{bits});
}
[[deprecated("pass a QuantSpec instead of QuantBits")]]
inline float kl_j_threshold(std::span<const float> values, QuantBits bits, int bins = 2048) {
  return kl_j_threshold(values, QuantSpec{bits}, bins);
}

/// The J distance itself, exposed for tests: both inputs are unnormalized
/// non-negative mass vectors of equal length.
double kl_j_distance(const std::vector<double>& p, const std::vector<double>& q);

/// Per-channel MAX thresholds of a weight tensor along `axis`.
std::vector<float> per_channel_max_thresholds(const Tensor& w, int64_t axis);

}  // namespace tqt
