#include "quant/fake_quant.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace tqt {

namespace {
constexpr float kLn2 = 0.69314718055994530942f;

float apply_round(float x, RoundMode mode) {
  if (mode == RoundMode::kHalfToEven) return round_half_to_even(x);
  // Half away from zero: the biased schoolbook rule (ablation only).
  return x >= 0.0f ? std::floor(x + 0.5f) : std::ceil(x - 0.5f);
}
}

std::string to_string(QuantMode m) {
  switch (m) {
    case QuantMode::kTqt: return "tqt";
    case QuantMode::kClipped: return "clipped";
    case QuantMode::kPact: return "pact";
    case QuantMode::kLsq: return "lsq";
  }
  return "?";
}

ParamPtr make_threshold(const std::string& name, float log2_t0, bool trainable) {
  auto p = std::make_shared<Param>(name, Tensor::scalar(log2_t0), "threshold", trainable);
  return p;
}

FakeQuantOp::FakeQuantOp(const QuantSpec& spec, QuantMode mode, ParamPtr threshold)
    : spec_(spec), mode_(mode), threshold_(std::move(threshold)) {
  spec_.validate();
  if (!threshold_) throw std::invalid_argument("FakeQuant: null threshold param");
  if (spec_.per_channel()) {
    if (mode_ != QuantMode::kTqt) {
      throw std::invalid_argument("FakeQuant: per-channel supports TQT mode only");
    }
    return;
  }
  if (mode_ == QuantMode::kPact && spec_.is_signed) {
    throw std::invalid_argument("FakeQuant: PACT applies to unsigned (post-ReLU) tensors only");
  }
  if (mode_ == QuantMode::kLsq && spec_.power_of_2) {
    throw std::invalid_argument("FakeQuant: LSQ learns a real-valued scale (power_of_2 must be false)");
  }
}

FakeQuantOp::FakeQuantOp(const QuantSpec& spec, DerivedExponent derived)
    : spec_(spec), derived_(std::move(derived)) {
  spec_.validate();
  if (spec_.per_channel()) {
    throw std::invalid_argument("FakeQuant: derived-scale quantizers are per-tensor");
  }
  if (!derived_) throw std::invalid_argument("FakeQuant: null derived-exponent callback");
}

void FakeQuantOp::set_threshold(ParamPtr p) {
  if (!p) throw std::invalid_argument("set_threshold: null param");
  if (derived_) throw std::logic_error("set_threshold: derived-scale quantizer has no threshold");
  threshold_ = std::move(p);
}

std::vector<ParamPtr> FakeQuantOp::params() {
  if (threshold_) return {threshold_};
  return {};
}

float FakeQuantOp::raw_threshold() const {
  if (!threshold_ || per_channel()) throw std::logic_error("raw_threshold: not a per-tensor trainable quantizer");
  switch (mode_) {
    case QuantMode::kTqt:
    case QuantMode::kClipped:
      return std::exp2(threshold_->value[0]);
    case QuantMode::kPact:
    case QuantMode::kLsq:
      return threshold_->value[0];
  }
  return 0.0f;
}

int FakeQuantOp::exponent() const {
  if (derived_) return derived_();
  if (!spec_.power_of_2) throw std::logic_error("exponent: quantizer does not use a power-of-2 scale");
  if (per_channel()) throw std::logic_error("exponent: per-channel quantizer has no single exponent");
  const float log2_t = threshold_->value[0];
  return static_cast<int>(std::ceil(log2_t)) - spec_.scale_shift();
}

int FakeQuantOp::channel_exponent(int64_t c) const {
  if (!per_channel() || !spec_.power_of_2) {
    throw std::logic_error("channel_exponent: not a power-of-2 per-channel quantizer");
  }
  if (c < 0 || c >= threshold_->value.numel()) {
    throw std::out_of_range("channel_exponent: channel index out of range");
  }
  const float log2_t = threshold_->value[c];
  return static_cast<int>(std::ceil(log2_t)) - spec_.scale_shift();
}

float FakeQuantOp::scale() const {
  if (derived_ || spec_.power_of_2) return std::exp2(static_cast<float>(exponent()));
  switch (mode_) {
    case QuantMode::kLsq:
      return std::max(threshold_->value[0], 1e-12f);
    case QuantMode::kPact:
      return std::max(threshold_->value[0], 1e-12f) / static_cast<float>(spec_.qmax());
    case QuantMode::kTqt:
    case QuantMode::kClipped:
      // Real-scale static variant: map raw threshold t to the largest level.
      return std::exp2(threshold_->value[0]) / static_cast<float>(spec_.qmax());
  }
  return 1.0f;
}

Tensor FakeQuantOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  if (observer_) observer_(x);
  x_ = x;
  if (!enabled_ || collect_) {
    if (collect_) {
      collected_.insert(collected_.end(), x.vec().begin(), x.vec().end());
    }
    bypassed_ = true;
    return x;
  }
  bypassed_ = false;
  if (per_channel()) return forward_per_channel(x);
  if (mode_ == QuantMode::kPact) return forward_pact(x);
  return forward_per_tensor(x);
}

Tensor FakeQuantOp::forward_per_tensor(const Tensor& x) {
  const float s = scale();
  s_used_ = s;
  const float n = static_cast<float>(spec_.qmin());
  const float p = static_cast<float>(spec_.qmax());
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const RoundMode rm = round_mode_;
  parallel_for(0, x.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float q = apply_round(px[i] / s, rm);
      q = std::min(std::max(q, n), p);
      py[i] = q * s;
    }
  });
  return y;
}

Tensor FakeQuantOp::forward_pact(const Tensor& x) {
  const float alpha = std::max(threshold_->value[0], 1e-12f);
  const float s = alpha / static_cast<float>(spec_.qmax());
  s_used_ = s;
  const float p = static_cast<float>(spec_.qmax());
  Tensor y(x.shape());
  parallel_for(0, x.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float q = round_half_to_even(x[i] / s);
      q = std::min(std::max(q, 0.0f), p);
      y[i] = q * s;
    }
  });
  return y;
}

Tensor FakeQuantOp::forward_per_channel(const Tensor& x) {
  const int64_t axis = spec_.channel_axis;
  if (axis >= x.rank()) throw std::invalid_argument("FakeQuant per-channel: axis out of range");
  const int64_t channels = x.dim(axis);
  if (threshold_->value.numel() != channels) {
    throw std::invalid_argument("FakeQuant per-channel: thresholds size mismatch");
  }
  // Precompute per-channel scales.
  std::vector<float> scales(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    const float log2_t = threshold_->value[c];
    if (spec_.power_of_2) {
      scales[static_cast<size_t>(c)] =
          std::exp2(static_cast<float>(static_cast<int>(std::ceil(log2_t)) - spec_.scale_shift()));
    } else {
      scales[static_cast<size_t>(c)] = std::exp2(log2_t) / static_cast<float>(spec_.qmax());
    }
  }
  // Iterate with the channel index recovered from the flat index.
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < x.rank(); ++d) inner *= x.dim(d);
  const float n = static_cast<float>(spec_.qmin());
  const float p = static_cast<float>(spec_.qmax());
  Tensor y(x.shape());
  parallel_for(0, x.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t c = (i / inner) % channels;
      const float s = scales[static_cast<size_t>(c)];
      float q = round_half_to_even(x[i] / s);
      q = std::min(std::max(q, n), p);
      y[i] = q * s;
    }
  });
  return y;
}

std::vector<Tensor> FakeQuantOp::backward(const Tensor& g) {
  if (bypassed_) return {g};

  if (per_channel()) {
    // Straight-through input gradients inside each channel's clip range; when
    // the per-channel thresholds are trainable, each channel also receives
    // its own Eq. 7 gradient (the per-channel TQT extension of §7).
    const int64_t axis = spec_.channel_axis;
    const int64_t channels = x_.dim(axis);
    int64_t inner = 1;
    for (int64_t d = axis + 1; d < x_.rank(); ++d) inner *= x_.dim(d);
    const float n = static_cast<float>(spec_.qmin());
    const float p = static_cast<float>(spec_.qmax());
    const bool train_th = threshold_->trainable && mode_ == QuantMode::kTqt;
    std::vector<float> scales(static_cast<size_t>(channels));
    for (int64_t c = 0; c < channels; ++c) {
      const float log2_t = threshold_->value[c];
      scales[static_cast<size_t>(c)] =
          spec_.power_of_2 ? std::exp2(static_cast<float>(static_cast<int>(std::ceil(log2_t)) -
                                                     spec_.scale_shift()))
                      : std::exp2(log2_t) / p;
    }
    Tensor dx(g.shape());
    // dx is elementwise; the per-channel Eq. 7 sums reduce over fixed-size
    // chunks with tree-combined partials so every channel's grad_log2t is
    // bit-identical at any thread count.
    std::vector<double> dth = parallel_reduce<std::vector<double>>(
        0, g.numel(), kElementGrain, std::vector<double>(static_cast<size_t>(channels), 0.0),
        [&](int64_t i0, int64_t i1) {
          std::vector<double> local(static_cast<size_t>(channels), 0.0);
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t c = (i / inner) % channels;
            const float s = scales[static_cast<size_t>(c)];
            const float xs = x_[i] / s;
            const float r = round_half_to_even(xs);
            if (r < n) {
              if (train_th) local[static_cast<size_t>(c)] += static_cast<double>(g[i]) * n;
            } else if (r > p) {
              if (train_th) local[static_cast<size_t>(c)] += static_cast<double>(g[i]) * p;
            } else {
              dx[i] = g[i];
              if (train_th) local[static_cast<size_t>(c)] += static_cast<double>(g[i]) * (r - xs);
            }
          }
          return local;
        },
        [](std::vector<double> acc, std::vector<double> part) {
          for (size_t c = 0; c < acc.size(); ++c) acc[c] += part[c];
          return acc;
        });
    if (train_th) {
      for (int64_t c = 0; c < channels; ++c) {
        threshold_->grad[c] +=
            scales[static_cast<size_t>(c)] * kLn2 * static_cast<float>(dth[static_cast<size_t>(c)]);
      }
    }
    return {dx};
  }

  if (mode_ == QuantMode::kPact) {
    const float alpha = std::max(threshold_->value[0], 1e-12f);
    Tensor dx(g.shape());
    const double dalpha = parallel_reduce<double>(
        0, g.numel(), kElementGrain, 0.0,
        [&](int64_t i0, int64_t i1) {
          double local = 0.0;
          for (int64_t i = i0; i < i1; ++i) {
            if (x_[i] >= alpha) {
              local += g[i];  // Eq. (1): gradient 1 above the clip threshold
            } else if (x_[i] > 0.0f) {
              dx[i] = g[i];
            }
          }
          return local;
        },
        [](double a, double b) { return a + b; });
    if (threshold_->trainable) threshold_->grad[0] += static_cast<float>(dalpha);
    return {dx};
  }

  const float s = s_used_;
  const float n = static_cast<float>(spec_.qmin());
  const float p = static_cast<float>(spec_.qmax());
  Tensor dx(g.shape());
  // The Eq. 6/7 threshold gradient is a full-tensor reduction; fixed-size
  // chunks + tree-combined double partials keep grad_log2t bit-identical at
  // 1, 2, and N threads (the determinism contract of src/runtime/parallel.h).
  const RoundMode rm = round_mode_;
  const bool clipped = mode_ == QuantMode::kClipped;
  const double dth = parallel_reduce<double>(
      0, g.numel(), kElementGrain, 0.0,
      [&](int64_t i0, int64_t i1) {
        double local = 0.0;
        for (int64_t i = i0; i < i1; ++i) {
          const float xs = x_[i] / s;
          const float r = apply_round(xs, rm);  // same rule as forward
          if (r < n) {
            // Below range: clipped to n. Threshold gradient contribution n
            // (Eq. 6).
            local += static_cast<double>(g[i]) * n;
          } else if (r > p) {
            local += static_cast<double>(g[i]) * p;
          } else {
            dx[i] = g[i];  // Eq. (8)
            if (!clipped) {
              // Eq. (6): the rounded-minus-exact term the STE keeps as a value.
              local += static_cast<double>(g[i]) * (r - xs);
            }
            // kClipped: round treated as identity -> zero contribution inside.
          }
        }
        return local;
      },
      [](double a, double b) { return a + b; });
  if (threshold_ && threshold_->trainable && !derived_) {
    float gth = 0.0f;
    switch (mode_) {
      case QuantMode::kTqt:
      case QuantMode::kClipped:
        // d/d(log2 t) = s ln2 * (...)   (Eq. 7)
        gth = s * kLn2 * static_cast<float>(dth);
        break;
      case QuantMode::kLsq:
        gth = static_cast<float>(dth);  // gradient on the raw scale s
        break;
      case QuantMode::kPact:
        break;  // handled above
    }
    threshold_->grad[0] += gth;
  }
  return {dx};
}

}  // namespace tqt
