#include "quant/unfused.h"

#include <cmath>
#include <stdexcept>

#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace tqt {

namespace {
constexpr float kLn2 = 0.69314718055994530942f;
}

UnfusedFakeQuantOp::UnfusedFakeQuantOp(const QuantSpec& spec, ParamPtr log2_threshold)
    : bits_(spec.storage()), threshold_(std::move(log2_threshold)) {
  spec.validate();
  if (spec.per_channel() || !spec.power_of_2) {
    throw std::invalid_argument("UnfusedFakeQuant: per-tensor power-of-2 only");
  }
  if (!threshold_) throw std::invalid_argument("UnfusedFakeQuant: null threshold");
}

Tensor UnfusedFakeQuantOp::forward(const std::vector<const Tensor*>& in) {
  const Tensor& x = *in[0];
  // Threshold path: s = 2^(ceil(log2 t) - shift); ceil is STE'd (grad 1).
  const float log2_t = threshold_->value[0];
  s_used_ = std::exp2(static_cast<float>(static_cast<int>(std::ceil(log2_t)) - bits_.scale_shift()));
  const float n = static_cast<float>(bits_.qmin());
  const float p = static_cast<float>(bits_.qmax());

  // Each stage materializes its output, exactly like a composed TF graph.
  x_scaled_ = x / s_used_;
  x_rounded_ = Tensor(x.shape());
  sat_mask_ = Tensor(x.shape());
  x_saturated_ = Tensor(x.shape());
  parallel_for(0, x.numel(), kElementGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) x_rounded_[i] = round_half_to_even(x_scaled_[i]);
    for (int64_t i = i0; i < i1; ++i) {
      const float r = x_rounded_[i];
      const bool inside = r >= n && r <= p;
      sat_mask_[i] = inside ? 1.0f : 0.0f;
      x_saturated_[i] = std::min(std::max(r, n), p);
    }
  });
  return x_saturated_ * s_used_;  // de-quant
}

std::vector<Tensor> UnfusedFakeQuantOp::backward(const Tensor& g) {
  // Chain rule through the stored intermediates:
  //   y = sat(r) * s,  r = round(x/s) with STE,  s = 2^(ceil(log2 t)-k) with
  //   STE on ceil so ds/d(log2 t) = s ln2.
  //
  //   dy/dx      = sat'(r) * 1 * (1/s) * s = mask
  //   dy/d log2t = [ sat'(r) * (-x/s^2) * s + sat(r) ] * s ln2
  //              = [ sat(r) - mask * x/s ] * s ln2
  // which reduces to Eq. (7)'s three cases.
  Tensor dx(g.shape());
  // Deterministic chunked reduction for the threshold gradient (see
  // src/runtime/parallel.h); dx is elementwise and rides in the same pass.
  const double dth = parallel_reduce<double>(
      0, g.numel(), kElementGrain, 0.0,
      [&](int64_t i0, int64_t i1) {
        double local = 0.0;
        for (int64_t i = i0; i < i1; ++i) {
          dx[i] = g[i] * sat_mask_[i];
          local += static_cast<double>(g[i]) * (x_saturated_[i] - sat_mask_[i] * x_scaled_[i]);
        }
        return local;
      },
      [](double a, double b) { return a + b; });
  if (threshold_->trainable) {
    threshold_->grad[0] += s_used_ * kLn2 * static_cast<float>(dth);
  }
  return {dx};
}

int64_t UnfusedFakeQuantOp::cached_bytes() const {
  return static_cast<int64_t>(sizeof(float)) *
         (x_scaled_.numel() + x_rounded_.numel() + sat_mask_.numel() + x_saturated_.numel());
}

}  // namespace tqt
