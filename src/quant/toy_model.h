// The toy L2 quantization problem of §3.4 and Appendices B/C:
//
//   L = sum_i (q(x_i; s) - x_i)^2 / 2   with x ~ Gaussian(sigma)
//
// A single quantizer optimized against least-square reconstruction error.
// The paper uses it to visualize transfer curves (Fig. 1-3), gradient
// landscapes (Fig. 7), threshold-training convergence across optimizers
// (Fig. 8-9), and to validate the Adam hyperparameter guidelines (Table 4).
// The benchmarks reproducing those figures all build on these helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/fake_quant.h"
#include "tensor/rng.h"

namespace tqt {

/// Pointwise quantizer evaluation used by the transfer-curve figures.
struct QuantizerCurves {
  std::vector<float> x;          ///< input sweep
  std::vector<float> q;          ///< forward q(x; s)
  std::vector<float> dq_dx;      ///< local input gradient (Eq. 8)
  std::vector<float> dq_dlog2t;  ///< local threshold gradient (Eq. 7)
  std::vector<float> dl_dx;      ///< overall L2-loss input gradient (Eq. 10)
  std::vector<float> dl_dlog2t;  ///< overall L2-loss threshold gradient (Eq. 9)
};

/// Evaluate the quantizer and its gradients point-by-point over [lo, hi].
/// `mode` chooses between the TQT formulation and the TF-FakeQuant clipped
/// formulation (Fig. 1 vs Fig. 3).
QuantizerCurves transfer_curves(QuantBits bits, QuantMode mode, float log2_t, float lo, float hi,
                                int points);

/// L2 loss and its log2-threshold gradient on a fixed batch.
struct ToyEval {
  double loss = 0.0;
  double grad_log2_t = 0.0;  ///< dL/d(log2 t)
  double grad_raw_t = 0.0;   ///< dL/dt = dL/d(log2 t) / (t ln 2)
};

ToyEval toy_l2_eval(const Tensor& x, QuantBits bits, QuantMode mode, float log2_t);

/// Optimizer choice for toy threshold-training runs (Fig. 8 legend).
enum class ToyOptimizer {
  kRawSgd,        ///< SGD on dL/dt (raw threshold domain)
  kLogSgd,        ///< SGD on dL/d(log2 t)
  kNormedLogSgd,  ///< SGD on normed log gradients (Eqs. 17-18)
  kLogAdam,       ///< Adam on dL/d(log2 t) — the paper's recommendation
};

struct ToyRunConfig {
  QuantBits bits = int8_signed();
  float sigma = 1.0f;        ///< input Gaussian scale
  int batch = 1000;          ///< fresh Gaussian batch per step
  int steps = 2000;
  float lr = 0.1f;
  float beta1 = 0.9f;        ///< Adam only
  float beta2 = 0.999f;      ///< Adam / normed SGD
  float log2_t0 = 0.0f;      ///< initial log2 threshold
  uint64_t seed = 42;
  QuantMode mode = QuantMode::kTqt;
};

struct ToyRunResult {
  std::vector<float> log2_t;      ///< trajectory, one entry per step (post-update)
  std::vector<float> grad;        ///< dL/d(log2 t) per step (pre-update)
  float final_log2_t = 0.0f;
  /// Empirical gradient ratio r_g = -g_low / g_high around the final integer
  /// bin, estimated from the last quarter of the run (Appendix C).
  float empirical_rg = 0.0f;
};

ToyRunResult run_toy_training(const ToyRunConfig& cfg, ToyOptimizer opt);

}  // namespace tqt
