// FakeQuant: the quantization-emulation op at the heart of TQT.
//
// Forward (paper §3.2, Eq. 4): scale -> round (half-to-even) -> saturate ->
// de-quant, with a power-of-2 scale-factor derived from the trainable
// log2-threshold:  s = 2^ceil(log2 t) / 2^(b-1)   (signed; 2^b unsigned).
//
// Backward (paper §3.3):
//   d q / d x        = 1 inside the clip range, 0 outside            (Eq. 8)
//   d q / d log2 t   = s ln2 * { round(x/s) - x/s | n | p }          (Eq. 7)
// The crucial detail (§3.5): the straight-through estimator sets the
// *derivative* of round to 1 but keeps round(x/s) != x/s as a value, which is
// what gives the threshold gradient its sign structure (range-precision
// trade-off). QuantMode selects between this formulation and the baselines
// it is compared against (TF-FakeQuant clipped gradients, PACT, LSQ).
//
// One FakeQuantOp = one quantization layer. Scale merging (§4.3's q' nodes)
// is expressed by *sharing the threshold Param* between ops; derived scales
// (the q16 accumulator/bias nodes whose scale must equal s_w * s_x for the
// fixed-point mapping) are expressed by a DerivedExponent callback.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "nn/op.h"
#include "quant/quant_spec.h"

namespace tqt {

/// Returns the current integer exponent e with s = 2^e (power-of-2 mode).
using DerivedExponent = std::function<int()>;

class FakeQuantOp final : public Op {
 public:
  /// Trainable/static quantizer described by one `QuantSpec`. Per-tensor
  /// (spec.channel_axis < 0): `threshold` holds log2(t) as a scalar tensor
  /// (TQT/Clipped), raw alpha (PACT) or raw scale s (LSQ). Per-channel
  /// (spec.channel_axis >= 0, TQT mode only): `threshold` holds one log2(t)
  /// per channel — with a non-trainable parameter this is the per-channel QAT
  /// baseline of Table 1; with a trainable one it is the per-channel TQT
  /// extension the paper sketches as future work (§7), each channel's
  /// threshold receiving its own Eq. 7 gradient.
  FakeQuantOp(const QuantSpec& spec, QuantMode mode, ParamPtr threshold);

  /// Derived-scale quantizer (q16 accumulator/bias nodes): the exponent is
  /// computed by the callback each forward; no trainable threshold.
  FakeQuantOp(const QuantSpec& spec, DerivedExponent derived);

  /// Deprecated pre-QuantSpec signatures, kept as thin wrappers.
  [[deprecated("pass a QuantSpec instead of QuantBits + power_of_2")]]
  FakeQuantOp(QuantBits bits, QuantMode mode, ParamPtr threshold, bool power_of_2 = true)
      : FakeQuantOp(QuantSpec{bits.bits, bits.is_signed, -1, power_of_2}, mode,
                    std::move(threshold)) {}
  [[deprecated("pass a QuantSpec instead of QuantBits")]]
  FakeQuantOp(QuantBits bits, DerivedExponent derived)
      : FakeQuantOp(QuantSpec{bits.bits, bits.is_signed}, std::move(derived)) {}
  [[deprecated("pass a QuantSpec with channel_axis set")]]
  FakeQuantOp(QuantBits bits, ParamPtr log2_thresholds, int64_t axis, bool power_of_2)
      : FakeQuantOp(QuantSpec{bits.bits, bits.is_signed, axis, power_of_2}, QuantMode::kTqt,
                    std::move(log2_thresholds)) {}

  std::string type() const override { return "FakeQuant"; }
  int arity() const override { return 1; }
  Tensor forward(const std::vector<const Tensor*>& in) override;
  std::vector<Tensor> backward(const Tensor& g) override;
  std::vector<ParamPtr> params() override;

  const QuantSpec& spec() const { return spec_; }
  QuantBits bits() const { return spec_.storage(); }
  QuantMode mode() const { return mode_; }
  bool power_of_2() const { return spec_.power_of_2; }
  bool is_derived() const { return static_cast<bool>(derived_); }
  bool per_channel() const { return spec_.per_channel(); }
  int64_t channel_axis() const { return spec_.channel_axis; }
  const ParamPtr& threshold() const { return threshold_; }

  /// Replace the threshold parameter — used by the scale-merging pass (§4.3)
  /// to make several quantizers share one trained threshold.
  void set_threshold(ParamPtr p);

  /// Current scale-factor (per-tensor forms only).
  float scale() const;
  /// Current integer exponent e with s = 2^e (power-of-2 forms only).
  int exponent() const;
  /// Per-channel power-of-2 exponent of channel `c`:
  /// ceil(log2 t_c) - scale_shift. Power-of-2 per-channel forms only — this
  /// is what the fixed-point compiler reads to build the per-channel scale
  /// table.
  int channel_exponent(int64_t c) const;
  /// Current raw threshold t (per-tensor trainable forms).
  float raw_threshold() const;

  /// Rounding rule of the round stage (default: banker's rounding, §3.2).
  /// kHalfAwayFromZero exists for the rounding-bias ablation; the fixed-point
  /// engine always uses half-to-even.
  void set_round_mode(RoundMode mode) { round_mode_ = mode; }
  RoundMode round_mode() const { return round_mode_; }

  /// Enable/disable. A disabled FakeQuant is an identity in both directions
  /// (used to run the FP32 baseline through the same graph).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Calibration-collect mode: forward passes x through unchanged and
  /// appends its values to an internal buffer for the calibrator.
  void set_collect(bool collect) { collect_ = collect; }
  bool collecting() const { return collect_; }
  const std::vector<float>& collected() const { return collected_; }
  void clear_collected() { collected_.clear(); }

  /// Non-invasive observation: unlike collect mode, the observer sees the
  /// pre-quantization input x on every forward while quantization proceeds
  /// normally — so downstream layers still receive quantized activations.
  /// This is what the online calibration service (src/calib) hangs its
  /// fixed-memory histograms on: one forward pass yields per-layer statistics
  /// that account for quantized upstream inputs, exactly the topological
  /// property static calibration (§4.2) needs. Null clears the hook.
  using Observer = std::function<void(const Tensor& x)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }
  bool observed() const { return static_cast<bool>(observer_); }

 private:
  QuantSpec spec_;
  QuantMode mode_ = QuantMode::kTqt;
  ParamPtr threshold_;          // semantics depend on mode; null if derived
  DerivedExponent derived_;     // set for accumulator/bias quantizers

  bool enabled_ = true;
  bool collect_ = false;
  RoundMode round_mode_ = RoundMode::kHalfToEven;
  std::vector<float> collected_;
  Observer observer_;

  // Cached forward state for backward.
  Tensor x_;
  float s_used_ = 1.0f;
  bool bypassed_ = false;  // disabled or collecting during this forward

  Tensor forward_per_tensor(const Tensor& x);
  Tensor forward_per_channel(const Tensor& x);
  Tensor forward_pact(const Tensor& x);
};

/// Convenience: make a trainable TQT threshold parameter initialized to
/// log2(t0). Group is "threshold" so optimizers can schedule it separately.
ParamPtr make_threshold(const std::string& name, float log2_t0, bool trainable = true);

}  // namespace tqt
