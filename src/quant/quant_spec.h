// Quantizer configuration types shared by the fake-quantization op, the
// graph quantize pass, the calibrators, and the fixed-point engine.
//
// `QuantSpec` is the one precision spine: everything a quantizer needs to
// know statically — bit-width, signedness, per-channel axis, power-of-2
// constraint — travels as a single value instead of the scattered
// {int bits, bool is_signed, int64_t axis, bool power_of_2} parameter lists
// this file's types replaced. `PrecisionPolicy` is the model-level view
// (weight bits / activation bits / per-channel switch) that the CLI's
// --wbits/--abits/--per-channel flags and QuantizeConfig map onto;
// per-quantizer QuantSpecs are derived from it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tqt {

/// Threshold-gradient formulation of a trainable quantizer.
enum class QuantMode {
  kTqt,      ///< Paper Eqs. 6-8: STE with round kept in the backward value.
  kClipped,  ///< TF FakeQuant (§3.5): round treated as identity; threshold
             ///< gradient is zero inside the clip range.
  kPact,     ///< PACT (Eq. 1): d q/d alpha = [x >= alpha]; unsigned only.
  kLsq,      ///< LSQ-style: same gradient value as TQT but applied to the
             ///< raw scale-factor parameter (no log-domain, no power-of-2).
};

std::string to_string(QuantMode m);

/// Rounding rule of the quantizer's round stage. The paper uses banker's
/// rounding (§3.2) because round-half-away introduces a systematic bias that
/// accumulates across layers; kHalfAwayFromZero exists for the ablation that
/// demonstrates exactly that.
enum class RoundMode {
  kHalfToEven,       ///< banker's rounding (paper §3.2; IEEE default)
  kHalfAwayFromZero, ///< schoolbook rounding; biased away from zero
};

/// Which contract a bit-width is validated against. The two ranges differ
/// because training sweeps explore widths the ablations need — the bit-sweep
/// study goes down to 2-bit weights in the float fake-quant graph — while the
/// fixed-point engine's storage tiers (nibble / int8 / int16) support
/// inference only at 4 bits and up.
enum class QuantUse {
  kTraining,   ///< fake-quant graphs: bits must be in [2,16]
  kInference,  ///< fixed-point export/serving: bits must be in [4,16]
};

/// Storage-level description of one quantized tensor: bit-width + signedness
/// and the derived level range. Kept as the compact type for inner loops and
/// wire formats; `QuantSpec` below is the full quantizer description.
struct QuantBits {
  int bits = 8;
  bool is_signed = true;

  /// Smallest representable level (n of §3.2).
  int64_t qmin() const { return is_signed ? -(int64_t{1} << (bits - 1)) : 0; }
  /// Largest representable level (p of §3.2).
  int64_t qmax() const {
    return is_signed ? (int64_t{1} << (bits - 1)) - 1 : (int64_t{1} << bits) - 1;
  }
  /// Power of two that the saturation threshold 2^ceil(log2 t) divides by:
  /// 2^(b-1) signed, 2^b unsigned (§3.2 "Scale").
  int scale_shift() const { return is_signed ? bits - 1 : bits; }

  void validate(QuantUse use = QuantUse::kTraining) const {
    const int lo = use == QuantUse::kInference ? 4 : 2;
    if (bits < lo || bits > 16) {
      throw std::invalid_argument(
          std::string("QuantBits: ") +
          (use == QuantUse::kInference ? "inference bits must be in [4,16], got "
                                       : "training bits must be in [2,16], got ") +
          std::to_string(bits));
    }
  }
};

inline QuantBits int8_signed() { return {8, true}; }
inline QuantBits int8_unsigned() { return {8, false}; }
inline QuantBits int16_signed() { return {16, true}; }
inline QuantBits int4_signed() { return {4, true}; }

/// Full static description of one quantizer: storage width plus layout
/// (per-tensor vs per-channel) and the scale constraint. Per-tensor by
/// default; `channel_axis >= 0` selects per-channel — one threshold/scale per
/// slice along that axis of the quantized tensor.
struct QuantSpec {
  int bits = 8;
  bool is_signed = true;
  int64_t channel_axis = -1;  ///< -1: per-tensor; >= 0: per-channel along axis
  bool power_of_2 = true;     ///< scale constrained to 2^e (paper §3.2)

  QuantSpec() = default;
  QuantSpec(int b, bool sgn = true, int64_t axis = -1, bool p2 = true)
      : bits(b), is_signed(sgn), channel_axis(axis), power_of_2(p2) {}
  explicit QuantSpec(QuantBits qb) : bits(qb.bits), is_signed(qb.is_signed) {}

  bool per_channel() const { return channel_axis >= 0; }
  /// The storage-level view (level range, scale shift).
  QuantBits storage() const { return {bits, is_signed}; }
  int64_t qmin() const { return storage().qmin(); }
  int64_t qmax() const { return storage().qmax(); }
  int scale_shift() const { return storage().scale_shift(); }

  void validate(QuantUse use = QuantUse::kTraining) const {
    storage().validate(use);
    if (channel_axis < -1) {
      throw std::invalid_argument("QuantSpec: channel_axis must be -1 (per-tensor) or >= 0");
    }
  }
};

/// Model-level precision policy: the two bit-widths of a W/A configuration
/// (8/8, 4/8, ...) plus the per-channel-weights switch. Per-quantizer specs
/// are derived from it so "4/8 per-channel" is stated exactly once.
struct PrecisionPolicy {
  int wbits = 8;
  int abits = 8;
  bool per_channel_weights = false;

  /// Spec for a weight quantizer; `axis` is the output-channel axis of the
  /// consuming op (used only when per_channel_weights is set).
  QuantSpec weights(int64_t axis = -1) const {
    return QuantSpec{wbits, true, per_channel_weights ? axis : -1, true};
  }
  QuantSpec activations(bool sgn = true) const { return QuantSpec{abits, sgn}; }

  void validate(QuantUse use = QuantUse::kTraining) const {
    try {
      QuantBits{wbits, true}.validate(use);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("PrecisionPolicy: wbits " + std::to_string(wbits) +
                                  (use == QuantUse::kInference ? " outside inference range [4,16]"
                                                               : " outside training range [2,16]"));
    }
    try {
      QuantBits{abits, true}.validate(use);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("PrecisionPolicy: abits " + std::to_string(abits) +
                                  (use == QuantUse::kInference ? " outside inference range [4,16]"
                                                               : " outside training range [2,16]"));
    }
  }
};

}  // namespace tqt
