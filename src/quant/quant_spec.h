// Quantizer configuration types shared by the fake-quantization op, the
// graph quantize pass, and the fixed-point engine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tqt {

/// Threshold-gradient formulation of a trainable quantizer.
enum class QuantMode {
  kTqt,      ///< Paper Eqs. 6-8: STE with round kept in the backward value.
  kClipped,  ///< TF FakeQuant (§3.5): round treated as identity; threshold
             ///< gradient is zero inside the clip range.
  kPact,     ///< PACT (Eq. 1): d q/d alpha = [x >= alpha]; unsigned only.
  kLsq,      ///< LSQ-style: same gradient value as TQT but applied to the
             ///< raw scale-factor parameter (no log-domain, no power-of-2).
};

std::string to_string(QuantMode m);

/// Rounding rule of the quantizer's round stage. The paper uses banker's
/// rounding (§3.2) because round-half-away introduces a systematic bias that
/// accumulates across layers; kHalfAwayFromZero exists for the ablation that
/// demonstrates exactly that.
enum class RoundMode {
  kHalfToEven,       ///< banker's rounding (paper §3.2; IEEE default)
  kHalfAwayFromZero, ///< schoolbook rounding; biased away from zero
};

/// Static description of one quantized tensor.
struct QuantBits {
  int bits = 8;
  bool is_signed = true;

  /// Smallest representable level (n of §3.2).
  int64_t qmin() const { return is_signed ? -(int64_t{1} << (bits - 1)) : 0; }
  /// Largest representable level (p of §3.2).
  int64_t qmax() const {
    return is_signed ? (int64_t{1} << (bits - 1)) - 1 : (int64_t{1} << bits) - 1;
  }
  /// Power of two that the saturation threshold 2^ceil(log2 t) divides by:
  /// 2^(b-1) signed, 2^b unsigned (§3.2 "Scale").
  int scale_shift() const { return is_signed ? bits - 1 : bits; }

  void validate() const {
    if (bits < 2 || bits > 16) throw std::invalid_argument("QuantBits: bits must be in [2,16]");
  }
};

inline QuantBits int8_signed() { return {8, true}; }
inline QuantBits int8_unsigned() { return {8, false}; }
inline QuantBits int16_signed() { return {16, true}; }
inline QuantBits int4_signed() { return {4, true}; }

}  // namespace tqt
