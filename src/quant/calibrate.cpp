#include "quant/calibrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace tqt {

namespace {
constexpr float kMinThreshold = 1e-7f;  // keep log2(t) finite on degenerate data
}

float max_threshold(std::span<const float> values) {
  float m = 0.0f;
  for (float v : values) m = std::max(m, std::fabs(v));
  return std::max(m, kMinThreshold);
}

float sd_threshold(std::span<const float> values, float n_sd) {
  if (values.empty()) return kMinThreshold;
  double mean = 0.0;
  for (float v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (float v : values) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  return std::max(static_cast<float>(n_sd * std::sqrt(var)), kMinThreshold);
}

float percentile_threshold(std::span<const float> values, float pct) {
  if (values.empty()) return kMinThreshold;
  if (pct < 0.0f || pct > 100.0f) throw std::invalid_argument("percentile out of [0,100]");
  std::vector<float> mags(values.size());
  for (size_t i = 0; i < values.size(); ++i) mags[i] = std::fabs(values[i]);
  const size_t k = std::min(mags.size() - 1,
                            static_cast<size_t>(static_cast<double>(pct) / 100.0 *
                                                static_cast<double>(mags.size() - 1) + 0.5));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k), mags.end());
  return std::max(mags[k], kMinThreshold);
}

double kl_j_distance(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) throw std::invalid_argument("kl_j_distance: size mismatch");
  double sp = 0.0, sq = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) throw std::invalid_argument("kl_j_distance: negative mass");
    sp += p[i];
    sq += q[i];
  }
  if (sp <= 0.0 || sq <= 0.0) return 0.0;
  // Epsilon smoothing keeps the distance finite when supports differ.
  constexpr double eps = 1e-10;
  double j = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / sp + eps;
    const double qi = q[i] / sq + eps;
    j += (pi - qi) * std::log(pi / qi);
  }
  return j;
}

float kl_j_threshold_from_hist(const std::vector<float>& hist, float abs_max,
                               const QuantSpec& spec) {
  spec.validate();
  const int n_bins = static_cast<int>(hist.size());
  if (n_bins == 0 || abs_max <= 0.0f) return kMinThreshold;
  // Number of magnitude levels the quantizer can represent: 0..qmax.
  const int levels = static_cast<int>(spec.qmax()) + 1;
  if (n_bins <= levels) {
    return std::max(abs_max, kMinThreshold);  // nothing to clip at this resolution
  }
  const float bin_width = abs_max / static_cast<float>(n_bins);

  double best_j = -1.0;
  int best_i = n_bins;
  std::vector<double> p, q;
  for (int i = levels; i <= n_bins; ++i) {
    // Reference distribution: bins [0, i), clipped tail folded into bin i-1.
    p.assign(static_cast<size_t>(i), 0.0);
    for (int b = 0; b < i; ++b) p[static_cast<size_t>(b)] = hist[static_cast<size_t>(b)];
    double tail = 0.0;
    for (int b = i; b < n_bins; ++b) tail += hist[static_cast<size_t>(b)];
    p[static_cast<size_t>(i - 1)] += tail;

    // Quantized distribution: collapse the *unfolded* first i bins into
    // `levels` groups, spreading each group's mass uniformly over the bins
    // that had any mass. Building Q without the tail fold is what makes
    // clipping cost divergence (P's last bin carries the folded tail mass
    // that Q cannot represent).
    q.assign(static_cast<size_t>(i), 0.0);
    for (int g = 0; g < levels; ++g) {
      const int start = static_cast<int>(static_cast<int64_t>(g) * i / levels);
      const int end = static_cast<int>(static_cast<int64_t>(g + 1) * i / levels);
      double mass = 0.0;
      int support = 0;
      for (int b = start; b < end; ++b) {
        mass += hist[static_cast<size_t>(b)];
        if (hist[static_cast<size_t>(b)] > 0.0) ++support;
      }
      if (support == 0) continue;
      const double share = mass / support;
      for (int b = start; b < end; ++b) {
        if (hist[static_cast<size_t>(b)] > 0.0) q[static_cast<size_t>(b)] = share;
      }
    }

    const double j = kl_j_distance(p, q);
    if (best_j < 0.0 || j < best_j) {
      best_j = j;
      best_i = i;
    }
  }
  return std::max(static_cast<float>(best_i) * bin_width, kMinThreshold);
}

float kl_j_threshold(std::span<const float> values, const QuantSpec& spec, int bins) {
  if (values.empty()) return kMinThreshold;
  float abs_max = 0.0f;
  for (float v : values) abs_max = std::max(abs_max, std::fabs(v));
  if (abs_max <= 0.0f) return kMinThreshold;
  // Exact zeros (the ReLU spike) are representable at every threshold, so
  // they carry no information for the range-precision trade-off. Leaving
  // them in lets the quantized distribution's group-spreading dilute the
  // zero spike, which systematically biases KL-J toward tiny thresholds.
  std::vector<float> nonzero;
  nonzero.reserve(values.size());
  for (float v : values) {
    if (v != 0.0f) nonzero.push_back(v);
  }
  if (nonzero.empty()) return kMinThreshold;
  const int64_t count = static_cast<int64_t>(nonzero.size());
  const Tensor t({count}, std::move(nonzero));
  const std::vector<float> hist = abs_histogram(t, bins, abs_max);
  return kl_j_threshold_from_hist(hist, abs_max, spec);
}

std::vector<float> per_channel_max_thresholds(const Tensor& w, int64_t axis) {
  if (axis < 0 || axis >= w.rank()) throw std::invalid_argument("per_channel_max_thresholds: bad axis");
  const int64_t channels = w.dim(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < w.rank(); ++d) inner *= w.dim(d);
  std::vector<float> out(static_cast<size_t>(channels), kMinThreshold);
  for (int64_t i = 0; i < w.numel(); ++i) {
    const int64_t c = (i / inner) % channels;
    out[static_cast<size_t>(c)] = std::max(out[static_cast<size_t>(c)], std::fabs(w[i]));
  }
  return out;
}

}  // namespace tqt
