// Free-function kernels on Tensors: matrix multiply (plus the transposed
// variants needed by backprop), im2col/col2im for NHWC convolutions,
// row-wise softmax, histogramming for calibration, and the rounding
// primitives shared by the fake-quantizer and the fixed-point engine.
//
// Layout conventions (TensorFlow-flavoured, matching the paper's heritage):
//   activations  [N, H, W, C]
//   conv weights [kh, kw, Cin, Cout]
//   depthwise    [kh, kw, C]
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tqt {

// ---- Rounding -------------------------------------------------------------

/// Round-half-to-even ("banker's rounding", IEEE 754 default). The paper
/// (§3.2) uses this for the quantizer's round stage to avoid systematic
/// up/down bias, and the fixed-point engine uses the integer form for
/// rescaling shifts.
float round_half_to_even(float x);

/// (value * 2^-shift) rounded half-to-even, computed exactly in integers.
/// shift must be >= 0. Matches round_half_to_even(value / 2^shift).
int64_t shift_round_half_to_even(int64_t value, int shift);

// ---- Matmul family ---------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A^T[k,m] * B[k,n]  (A stored [k,m]); used for weight gradients.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B^T[n,k]  (B stored [n,k]); used for input gradients.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

// ---- Convolution lowering --------------------------------------------------

/// Geometry of a 2-D convolution / pooling window over an NHWC tensor.
struct Conv2dGeom {
  int64_t kh = 1, kw = 1;
  int64_t stride_h = 1, stride_w = 1;
  int64_t pad_top = 0, pad_bottom = 0, pad_left = 0, pad_right = 0;

  int64_t out_h(int64_t in_h) const { return (in_h + pad_top + pad_bottom - kh) / stride_h + 1; }
  int64_t out_w(int64_t in_w) const { return (in_w + pad_left + pad_right - kw) / stride_w + 1; }

  /// TensorFlow "SAME" padding for the given input extents.
  static Conv2dGeom same(int64_t kh, int64_t kw, int64_t stride, int64_t in_h, int64_t in_w);
  /// "VALID" padding (none).
  static Conv2dGeom valid(int64_t kh, int64_t kw, int64_t stride);
};

/// Lower input [N,H,W,C] to a patch matrix [N*oh*ow, kh*kw*C]; out-of-bounds
/// taps read as 0.
Tensor im2col(const Tensor& input, const Conv2dGeom& g);

/// Adjoint of im2col: scatter-add a patch-matrix gradient back to [N,H,W,C].
Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dGeom& g);

// ---- Misc ------------------------------------------------------------------

/// Row-wise softmax of a [rows, cols] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Histogram of |x| over [0, abs_max] with `bins` equal-width bins.
/// Used by the KL-J threshold calibrator. Returns counts (double precision
/// kept as float; calibration batches are small).
std::vector<float> abs_histogram(const Tensor& x, int bins, float abs_max);

}  // namespace tqt
