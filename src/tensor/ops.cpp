#include "tensor/ops.h"

#include <cmath>
#include <stdexcept>

#include "runtime/parallel.h"

namespace tqt {

float round_half_to_even(float x) {
  // The default IEEE-754 rounding mode is round-to-nearest-even and we never
  // change it, so nearbyint implements banker's rounding directly.
  return std::nearbyintf(x);
}

int64_t shift_round_half_to_even(int64_t value, int shift) {
  if (shift < 0) throw std::invalid_argument("shift_round_half_to_even: negative shift");
  if (shift == 0) return value;
  const int64_t one = int64_t{1} << shift;
  const int64_t half = one >> 1;
  const int64_t mask = one - 1;
  // Floor division then adjust: round up when remainder > half, or when
  // remainder == half and the floor quotient is odd (ties to even).
  int64_t q = value >> shift;  // arithmetic shift: floor for negatives too
  const int64_t r = value & mask;
  if (r > half || (r == half && (q & 1))) ++q;
  return q;
}

namespace {
void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + " must be rank 2, got " + shape_to_string(t.shape()));
  }
}

// K-panel height for the cache-blocked matmuls: a 256-row slab of B (256*n
// floats) stays resident in L2 while a thread's C rows stream over it.
// Blocking only regroups the kk loop; within each output element the
// contributions still accumulate in ascending kk order, so blocked results
// are bit-identical to the naive i-k-j loop.
constexpr int64_t kBlockK = 256;
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul: a");
  check_matrix(b, "matmul: b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dims " + std::to_string(k) + " vs " + std::to_string(b.dim(0)));
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Rows of C are independent: parallelize over i, block over kk. i-k-j
  // order inside a block keeps unit-stride access on both B and C rows.
  // No zero-skip on A values: `0 * inf = NaN` must propagate, and on dense
  // data the branch only costs mispredictions.
  parallel_for(0, m, grain_for(m, 2 * k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k, k0 + kBlockK);
      for (int64_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        const float* arow = pa + i * k;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          const float* brow = pb + kk * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_tn: a");
  check_matrix(b, "matmul_tn: b");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_tn: inner dims " + std::to_string(k) + " vs " + std::to_string(b.dim(0)));
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallel over rows of C (columns of A); A is read with stride m but each
  // element is touched once, while B's k-panel and C's rows stream at unit
  // stride. Per output element the kk order is unchanged (ascending), so the
  // result is bit-identical to the serial kk-i-j loop. The zero-skip stays
  // here: this kernel consumes activation gradients, which ReLU makes
  // genuinely sparse.
  parallel_for(0, m, grain_for(m, 2 * k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k, k0 + kBlockK);
      for (int64_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = pa[kk * m + i];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_nt: a");
  check_matrix(b, "matmul_nt: b");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt: inner dims " + std::to_string(k) + " vs " + std::to_string(b.dim(1)));
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Dot-product form: every output element owns a private accumulator, so
  // row-parallelism is trivially bit-identical to the serial loop.
  parallel_for(0, m, grain_for(m, 2 * k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
        crow[j] = static_cast<float>(acc);
      }
    }
  });
  return c;
}

Tensor transpose2d(const Tensor& a) {
  check_matrix(a, "transpose2d");
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) t[j * m + i] = a[i * n + j];
  return t;
}

Conv2dGeom Conv2dGeom::same(int64_t kh, int64_t kw, int64_t stride, int64_t in_h, int64_t in_w) {
  Conv2dGeom g;
  g.kh = kh;
  g.kw = kw;
  g.stride_h = g.stride_w = stride;
  const int64_t out_h = (in_h + stride - 1) / stride;
  const int64_t out_w = (in_w + stride - 1) / stride;
  const int64_t pad_h = std::max<int64_t>(0, (out_h - 1) * stride + kh - in_h);
  const int64_t pad_w = std::max<int64_t>(0, (out_w - 1) * stride + kw - in_w);
  g.pad_top = pad_h / 2;
  g.pad_bottom = pad_h - g.pad_top;
  g.pad_left = pad_w / 2;
  g.pad_right = pad_w - g.pad_left;
  return g;
}

Conv2dGeom Conv2dGeom::valid(int64_t kh, int64_t kw, int64_t stride) {
  Conv2dGeom g;
  g.kh = kh;
  g.kw = kw;
  g.stride_h = g.stride_w = stride;
  return g;
}

Tensor im2col(const Tensor& input, const Conv2dGeom& g) {
  if (input.rank() != 4) throw std::invalid_argument("im2col: input must be NHWC");
  const int64_t n = input.dim(0), h = input.dim(1), w = input.dim(2), c = input.dim(3);
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("im2col: empty output");
  Tensor cols({n * oh * ow, g.kh * g.kw * c});
  const float* in = input.data();
  float* out = cols.data();
  const int64_t patch = g.kh * g.kw * c;
  // One patch row per output pixel; rows are disjoint, so a flat parallel
  // loop over all (b, oy, ox) triples is a pure gather.
  const int64_t patches = n * oh * ow;
  parallel_for(0, patches, grain_for(patches, patch), [&](int64_t p0, int64_t p1) {
    for (int64_t pi = p0; pi < p1; ++pi) {
      const int64_t b = pi / (oh * ow);
      const int64_t oy = (pi / ow) % oh;
      const int64_t ox = pi % ow;
      float* dst = out + pi * patch;
      const int64_t iy0 = oy * g.stride_h - g.pad_top;
      const int64_t ix0 = ox * g.stride_w - g.pad_left;
      for (int64_t ky = 0; ky < g.kh; ++ky) {
        const int64_t iy = iy0 + ky;
        for (int64_t kx = 0; kx < g.kw; ++kx) {
          const int64_t ix = ix0 + kx;
          float* d = dst + (ky * g.kw + kx) * c;
          if (iy < 0 || iy >= h || ix < 0 || ix >= w) {
            for (int64_t ch = 0; ch < c; ++ch) d[ch] = 0.0f;
          } else {
            const float* s = in + ((b * h + iy) * w + ix) * c;
            for (int64_t ch = 0; ch < c; ++ch) d[ch] = s[ch];
          }
        }
      }
    }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dGeom& g) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im: input shape must be NHWC");
  const int64_t n = input_shape[0], h = input_shape[1], w = input_shape[2], c = input_shape[3];
  const int64_t oh = g.out_h(h), ow = g.out_w(w);
  const int64_t patch = g.kh * g.kw * c;
  if (cols.shape() != Shape{n * oh * ow, patch}) {
    throw std::invalid_argument("col2im: cols shape " + shape_to_string(cols.shape()) + " mismatch");
  }
  Tensor grad(input_shape);
  const float* src = cols.data();
  float* out = grad.data();
  // Scatter-add: overlapping patches collide within an image but never
  // across images, so parallelize over the batch only (grain 1). Each image
  // keeps the serial oy/ox/ky/kx accumulation order, which makes the result
  // bit-identical to the serial loop at every thread count.
  parallel_for(0, n, 1, [&](int64_t b0, int64_t b1) {
  for (int64_t b = b0; b < b1; ++b) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const float* s0 = src + ((b * oh + oy) * ow + ox) * patch;
        const int64_t iy0 = oy * g.stride_h - g.pad_top;
        const int64_t ix0 = ox * g.stride_w - g.pad_left;
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < g.kw; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const float* s = s0 + (ky * g.kw + kx) * c;
            float* d = out + ((b * h + iy) * w + ix) * c;
            for (int64_t ch = 0; ch < c; ++ch) d[ch] += s[ch];
          }
        }
      }
    }
  }
  });
  return grad;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: need [rows, cols]");
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < cols; ++j) o[j] *= inv;
  }
  return out;
}

std::vector<float> abs_histogram(const Tensor& x, int bins, float abs_max) {
  if (bins <= 0) throw std::invalid_argument("abs_histogram: bins must be positive");
  std::vector<float> h(static_cast<size_t>(bins), 0.0f);
  if (abs_max <= 0.0f) return h;
  const float scale = static_cast<float>(bins) / abs_max;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float a = std::fabs(x[i]);
    int b = static_cast<int>(a * scale);
    if (b >= bins) b = bins - 1;
    h[static_cast<size_t>(b)] += 1.0f;
  }
  return h;
}

}  // namespace tqt
