// Minimal binary (de)serialization of named tensor collections.
//
// Used to cache pretrained mini-network weights between benchmark runs so a
// full experiment sweep does not re-pretrain every network. The format is a
// private cache format, not an interchange format:
//
//   magic "TQTW" | u32 version | u64 count |
//   repeat count times:
//     u64 name_len | name bytes | u64 rank | i64 extents... | f32 data...
//
// All integers are little-endian host order (the library targets a single
// host; the cache is not meant to move between machines).
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"

namespace tqt {

using TensorMap = std::map<std::string, Tensor>;

/// Write the map to `path`; throws std::runtime_error on I/O failure.
void save_tensors(const std::string& path, const TensorMap& tensors);

/// Read a map previously written by save_tensors; throws on malformed input.
TensorMap load_tensors(const std::string& path);

/// True if `path` exists and starts with the expected magic.
bool is_tensor_file(const std::string& path);

}  // namespace tqt
