// Deterministic pseudo-random number generation for the TQT library.
//
// All stochastic behaviour in the library (weight init, synthetic data,
// sampling of calibration batches) is driven through this Rng so experiments
// are reproducible from a single seed across platforms. The generator is
// xoshiro256** (Blackman & Vigna), chosen for its tiny state, speed, and
// well-understood statistical quality; we do not depend on the unspecified
// distributions of <random>.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace tqt {

/// xoshiro256** generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (uses cached second value).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Derive an independent stream for a sub-task; deterministic in (seed,
  /// stream id). Used so e.g. "class 3's pattern" never depends on how many
  /// draws happened before it.
  Rng fork(uint64_t stream) const;

  // ---- Tensor fills ------------------------------------------------------
  Tensor normal_tensor(Shape shape, float mean = 0.0f, float stddev = 1.0f);
  Tensor uniform_tensor(Shape shape, float lo, float hi);

  /// In-place Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace tqt
