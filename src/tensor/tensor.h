// Dense row-major float tensor used throughout the TQT library.
//
// Design notes:
//  - Value semantics: a Tensor owns its storage (std::vector<float>); copies
//    are deep, moves are cheap. This keeps ownership trivially correct (no
//    aliasing surprises) at the cost of explicit copies, which is fine at the
//    mini-network scale this library targets.
//  - Shapes are vectors of non-negative int64_t. Rank 0 is a scalar holding
//    one element. All storage is contiguous row-major (C order).
//  - Errors are programming errors and throw std::invalid_argument /
//    std::out_of_range; there is no "maybe" API surface.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace tqt {

/// Shape of a tensor: extent along each dimension, row-major.
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (product of extents; 1 for rank 0).
int64_t numel_of(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, for error messages and logging.
std::string shape_to_string(const Shape& shape);

/// Dense row-major float32 tensor with value semantics.
class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting `data` (size must match the shape's element count).
  Tensor(Shape shape, std::vector<float> data);

  /// Rank-1 tensor from a braced list: Tensor::of({1.f, 2.f}).
  static Tensor of(std::initializer_list<float> values);

  /// Scalar (rank-0) tensor.
  static Tensor scalar(float value);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }

  /// Evenly spaced values in [start, stop) with the given step, rank 1.
  static Tensor arange(float start, float stop, float step = 1.0f);

  /// `count` evenly spaced values from start to stop inclusive, rank 1.
  static Tensor linspace(float start, float stop, int64_t count);

  const Shape& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Extent along dimension `dim`; negative indices count from the back.
  int64_t dim(int64_t d) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Bounds-checked flat access.
  float& at(int64_t i);
  float at(int64_t i) const;

  /// Multi-dimensional access (bounds-checked); rank must match.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Value of a scalar / single-element tensor.
  float item() const;

  /// Same storage viewed under a new shape (element counts must agree).
  /// One extent may be -1 and is inferred.
  Tensor reshape(Shape new_shape) const;

  /// In-place fill.
  void fill(float value);

  /// In-place zero.
  void zero() { fill(0.0f); }

  // ---- In-place arithmetic (shapes must match exactly for tensor forms) --
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator/=(const Tensor& other);
  Tensor& operator+=(float v);
  Tensor& operator-=(float v);
  Tensor& operator*=(float v);
  Tensor& operator/=(float v);

  /// this += alpha * other  (axpy, the hot path of every optimizer).
  void add_scaled(const Tensor& other, float alpha);

  // ---- Reductions -------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// max(|x_i|) over all elements; 0 for empty tensors.
  float abs_max() const;
  /// Population standard deviation.
  float std() const;
  /// Index of the largest element (first on ties).
  int64_t argmax() const;

  /// True if shapes are equal and all elements are exactly equal.
  bool equals(const Tensor& other) const;
  /// True if shapes are equal and elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-6f) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- Out-of-place arithmetic (exact shape match; no broadcasting) --------
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);
Tensor operator+(const Tensor& a, float v);
Tensor operator-(const Tensor& a, float v);
Tensor operator*(const Tensor& a, float v);
Tensor operator/(const Tensor& a, float v);
Tensor operator*(float v, const Tensor& a);
Tensor operator-(const Tensor& a);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace tqt
