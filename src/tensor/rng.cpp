#include "tensor/rng.h"

#include <cmath>
#include <stdexcept>

namespace tqt {

namespace {
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for span << 2^64 (our use: tiny spans).
  return lo + static_cast<int64_t>(next_u64() % span);
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  has_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

Rng Rng::fork(uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix so that forks
  // are independent of both each other and the parent's future output.
  uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  return Rng(mix);
}

Tensor Rng::normal_tensor(Shape shape, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = normal(mean, stddev);
  return t;
}

Tensor Rng::uniform_tensor(Shape shape, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = uniform(lo, hi);
  return t;
}

void Rng::shuffle(std::vector<int64_t>& v) {
  for (size_t i = v.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace tqt
