#include "tensor/serialize.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tqt {

namespace {
constexpr char kMagic[4] = {'T', 'Q', 'T', 'W'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor file: truncated");
  return v;
}
}  // namespace

void save_tensors(const std::string& path, const TensorMap& tensors) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_pod(os, static_cast<uint64_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<uint64_t>(t.rank()));
    for (int64_t d : t.shape()) write_pod(os, d);
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * static_cast<int64_t>(sizeof(float))));
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

TensorMap load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) throw std::runtime_error("bad magic in " + path);
  const auto version = read_pod<uint32_t>(is);
  if (version != kVersion) throw std::runtime_error("unsupported tensor file version");
  const auto count = read_pod<uint64_t>(is);
  TensorMap out;
  for (uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<uint64_t>(is);
    if (name_len > (1u << 20)) throw std::runtime_error("tensor file: absurd name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw std::runtime_error("tensor file: truncated name");
    const auto rank = read_pod<uint64_t>(is);
    if (rank > 8) throw std::runtime_error("tensor file: absurd rank");
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<int64_t>(is);
    const int64_t n = numel_of(shape);
    std::vector<float> data(static_cast<size_t>(n));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(n * static_cast<int64_t>(sizeof(float))));
    if (!is) throw std::runtime_error("tensor file: truncated data for " + name);
    out.emplace(std::move(name), Tensor(std::move(shape), std::move(data)));
  }
  return out;
}

bool is_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[4];
  is.read(magic, 4);
  return is && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace tqt
