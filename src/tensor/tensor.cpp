#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tqt {

int64_t numel_of(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative extent in shape " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (numel_of(shape_) != static_cast<int64_t>(data_.size())) {
    throw std::invalid_argument("data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())}, std::vector<float>(values));
}

Tensor Tensor::scalar(float value) { return Tensor(Shape{}, std::vector<float>{value}); }

Tensor Tensor::arange(float start, float stop, float step) {
  if (step == 0.0f) throw std::invalid_argument("arange: step must be non-zero");
  std::vector<float> v;
  if (step > 0) {
    for (float x = start; x < stop; x += step) v.push_back(x);
  } else {
    for (float x = start; x > stop; x += step) v.push_back(x);
  }
  const int64_t n = static_cast<int64_t>(v.size());
  return Tensor({n}, std::move(v));
}

Tensor Tensor::linspace(float start, float stop, int64_t count) {
  if (count < 2) throw std::invalid_argument("linspace: count must be >= 2");
  std::vector<float> v(static_cast<size_t>(count));
  const double step = (static_cast<double>(stop) - start) / static_cast<double>(count - 1);
  for (int64_t i = 0; i < count; ++i) v[static_cast<size_t>(i)] = static_cast<float>(start + step * static_cast<double>(i));
  v.back() = stop;
  return Tensor({count}, std::move(v));
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t r = rank();
  if (d < 0) d += r;
  if (d < 0 || d >= r) {
    throw std::out_of_range("dim " + std::to_string(d) + " out of range for rank " + std::to_string(r));
  }
  return shape_[static_cast<size_t>(d)];
}

float& Tensor::at(int64_t i) {
  if (i < 0 || i >= numel()) throw std::out_of_range("flat index " + std::to_string(i));
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const {
  if (i < 0 || i >= numel()) throw std::out_of_range("flat index " + std::to_string(i));
  return data_[static_cast<size_t>(i)];
}

namespace {
int64_t flat_index(const Shape& shape, std::initializer_list<int64_t> idx) {
  if (static_cast<int64_t>(idx.size()) != static_cast<int64_t>(shape.size())) {
    throw std::invalid_argument("index rank mismatch");
  }
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    if (i < 0 || i >= shape[d]) throw std::out_of_range("index out of range at dim " + std::to_string(d));
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(flat_index(shape_, idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(flat_index(shape_, idx))];
}

float Tensor::item() const {
  if (numel() != 1) throw std::invalid_argument("item() on tensor with numel " + std::to_string(numel()));
  return data_[0];
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t inferred = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (inferred >= 0) throw std::invalid_argument("reshape: more than one -1");
      inferred = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshape: cannot infer extent for " + shape_to_string(new_shape));
    }
    new_shape[static_cast<size_t>(inferred)] = numel() / known;
  }
  if (numel_of(new_shape) != numel()) {
    throw std::invalid_argument("reshape " + shape_to_string(shape_) + " -> " + shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + shape_to_string(a.shape()) +
                                " vs " + shape_to_string(b.shape()));
  }
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(*this, other, "+=");
  for (int64_t i = 0; i < numel(); ++i) data_[static_cast<size_t>(i)] += other[i];
  return *this;
}
Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(*this, other, "-=");
  for (int64_t i = 0; i < numel(); ++i) data_[static_cast<size_t>(i)] -= other[i];
  return *this;
}
Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(*this, other, "*=");
  for (int64_t i = 0; i < numel(); ++i) data_[static_cast<size_t>(i)] *= other[i];
  return *this;
}
Tensor& Tensor::operator/=(const Tensor& other) {
  check_same_shape(*this, other, "/=");
  for (int64_t i = 0; i < numel(); ++i) data_[static_cast<size_t>(i)] /= other[i];
  return *this;
}
Tensor& Tensor::operator+=(float v) {
  for (float& x : data_) x += v;
  return *this;
}
Tensor& Tensor::operator-=(float v) {
  for (float& x : data_) x -= v;
  return *this;
}
Tensor& Tensor::operator*=(float v) {
  for (float& x : data_) x *= v;
  return *this;
}
Tensor& Tensor::operator/=(float v) {
  for (float& x : data_) x /= v;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_scaled");
  const float* o = other.data();
  float* d = data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) d[i] += alpha * o[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (empty()) throw std::invalid_argument("mean of empty tensor");
  return static_cast<float>(static_cast<double>(sum()) / static_cast<double>(numel()));
}

float Tensor::min() const {
  if (empty()) throw std::invalid_argument("min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (empty()) throw std::invalid_argument("max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

float Tensor::std() const {
  if (empty()) throw std::invalid_argument("std of empty tensor");
  const double mu = mean();
  double acc = 0.0;
  for (float x : data_) {
    const double d = x - mu;
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(numel())));
}

int64_t Tensor::argmax() const {
  if (empty()) throw std::invalid_argument("argmax of empty tensor");
  return static_cast<int64_t>(std::max_element(data_.begin(), data_.end()) - data_.begin());
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < numel(); ++i) {
    if (std::fabs(data_[static_cast<size_t>(i)] - other[i]) > tol) return false;
  }
  return true;
}

#define TQT_BINOP(OP)                                       \
  Tensor operator OP(const Tensor& a, const Tensor& b) {   \
    Tensor r = a;                                           \
    r OP## = b;                                             \
    return r;                                               \
  }                                                         \
  Tensor operator OP(const Tensor& a, float v) {            \
    Tensor r = a;                                           \
    r OP## = v;                                             \
    return r;                                               \
  }

TQT_BINOP(+)
TQT_BINOP(-)
TQT_BINOP(*)
TQT_BINOP(/)
#undef TQT_BINOP

Tensor operator*(float v, const Tensor& a) { return a * v; }

Tensor operator-(const Tensor& a) { return a * -1.0f; }

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << shape_to_string(t.shape()) << " {";
  const int64_t n = std::min<int64_t>(t.numel(), 16);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << t[i];
  }
  if (t.numel() > n) os << ", ...";
  os << '}';
  return os;
}

}  // namespace tqt
