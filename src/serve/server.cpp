#include "serve/server.h"

#include <stdexcept>

namespace tqt::serve {

namespace {

/// The single validation path for every deployment: deploy() and
/// deploy_file() both funnel through here, so for the same bad input the two
/// entry points report character-identical errors (asserted in test_serve).
void validate_deployment(const std::string& name, const FixedPointProgram& program,
                         const Shape& sample_shape) {
  if (name.empty()) {
    throw std::invalid_argument("serve: model name must be non-empty");
  }
  if (program.instruction_count() == 0) {
    throw std::invalid_argument("serve: program for '" + name + "' has no instructions");
  }
  if (sample_shape.empty()) {
    throw std::invalid_argument("serve: sample shape for '" + name +
                                "' must have at least one dimension");
  }
  for (const int64_t d : sample_shape) {
    if (d <= 0) {
      throw std::invalid_argument("serve: sample shape for '" + name +
                                  "' has non-positive dimension " + std::to_string(d));
    }
  }
}

}  // namespace

InferenceServer::InferenceServer(ServerConfig cfg) : cfg_(cfg) {
  if (cfg_.metrics) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<observe::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  registry_ = cfg_.registry ? cfg_.registry : std::make_shared<ModelRegistry>();
}

InferenceServer::~InferenceServer() { shutdown_and_drain(); }

uint64_t InferenceServer::deploy(const std::string& name, FixedPointProgram program,
                                 Shape sample_shape) {
  validate_deployment(name, program, sample_shape);
  const uint64_t version = registry_->install(name, std::move(program));
  ensure_lane(name, std::move(sample_shape));
  return version;
}

void InferenceServer::ensure_lane(const std::string& name, Shape sample_shape) {
  if (name.empty()) {
    throw std::invalid_argument("serve: model name must be non-empty");
  }
  if (sample_shape.empty()) {
    throw std::invalid_argument("serve: sample shape for '" + name +
                                "' must have at least one dimension");
  }
  for (const int64_t d : sample_shape) {
    if (d <= 0) {
      throw std::invalid_argument("serve: sample shape for '" + name +
                                  "' has non-positive dimension " + std::to_string(d));
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (lanes_.find(name) == lanes_.end()) {
    Lane lane;
    lane.stats = std::make_unique<ServeStats>(*metrics_, name);
    // The execute hook snapshots the registry per batch, so a hot swap takes
    // effect at the next batch boundary without touching the lane. run_into
    // reuses the worker's output tensor — zero steady-state allocation.
    lane.batcher = std::make_unique<MicroBatcher>(
        cfg_.batch, std::move(sample_shape),
        [this, name](const Tensor& batch, ExecContext& ctx, Tensor& out) {
          const auto program_snapshot = registry_->lookup(name);
          if (!program_snapshot) {
            throw std::runtime_error("serve: model '" + name + "' disappeared from registry");
          }
          program_snapshot->run_into(batch, ctx, out);
        },
        lane.stats.get());
    lanes_.emplace(name, std::move(lane));
  }
}

uint64_t InferenceServer::deploy_file(const std::string& name, const std::string& path,
                                      Shape sample_shape) {
  return deploy(name, FixedPointProgram::load(path), std::move(sample_shape));
}

InferenceServer::Lane* InferenceServer::find_lane(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = lanes_.find(name);
  // Lanes are created once and destroyed only with the server, so the raw
  // pointer stays valid after the map lock is released.
  return it == lanes_.end() ? nullptr : const_cast<Lane*>(&it->second);
}

SubmitResult InferenceServer::submit(const std::string& name, Tensor sample,
                                     SubmitOptions opts) {
  Lane* lane = find_lane(name);
  if (!lane) {
    SubmitResult res;
    res.status = SubmitStatus::kUnknownModel;
    return res;
  }
  if (cfg_.mirror) cfg_.mirror(name, sample);
  return lane->batcher->submit(std::move(sample), opts);
}

SubmitStatus InferenceServer::submit_async(const std::string& name, Tensor sample,
                                           SubmitOptions opts, MicroBatcher::DoneFn done) {
  Lane* lane = find_lane(name);
  if (!lane) return SubmitStatus::kUnknownModel;
  if (cfg_.mirror) cfg_.mirror(name, sample);
  return lane->batcher->submit_async(std::move(sample), opts, std::move(done));
}

StatsSnapshot InferenceServer::stats(const std::string& name) const {
  Lane* lane = find_lane(name);
  if (!lane) throw std::invalid_argument("serve: unknown model '" + name + "'");
  return lane->stats->snapshot();
}

std::string InferenceServer::stats_json() const {
  observe::JsonWriter w;
  w.obj();
  w.key("models").arr();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, lane] : lanes_) {
    w.raw(to_json(name, registry_->version(name), lane.stats->snapshot()));
  }
  w.end();
  w.end();
  return w.take();
}

void InferenceServer::shutdown_and_drain() {
  // Collect lanes under the lock, drain outside it: draining blocks on
  // worker threads, which may still be executing submit/stats calls that
  // need mu_.
  std::vector<MicroBatcher*> batchers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batchers.reserve(lanes_.size());
    for (auto& [name, lane] : lanes_) batchers.push_back(lane.batcher.get());
  }
  for (MicroBatcher* b : batchers) b->shutdown_and_drain();
}

}  // namespace tqt::serve
