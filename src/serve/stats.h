// Per-model serving statistics for tqt-serve, rebased on tqt-observe.
//
// ServeStats is now a thin facade over observe::MetricsRegistry instruments
// ("serve.<lane>.requests", ".latency_us", ...): the bespoke
// LatencyHistogram this file used to define lives on as
// observe::Histogram's geometric layout (same bucket bounds, same
// percentile semantics), so snapshots and the JSON schema are unchanged
// from PR 2. StatsSnapshot/to_json stay as the compat shim for existing
// consumers; new code should read the registry directly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "observe/observe.h"

namespace tqt::serve {

/// Point-in-time copy of one model's serving counters.
struct StatsSnapshot {
  uint64_t requests = 0;    ///< accepted by admission control
  uint64_t responses = 0;   ///< futures fulfilled with a tensor
  uint64_t failed = 0;      ///< futures fulfilled with an exception
  uint64_t shed = 0;        ///< rejected: queue already at max_queue
  uint64_t deadline_dropped = 0;  ///< dropped: deadline expired before execution
  uint64_t batches = 0;     ///< batches executed
  uint64_t queue_high_water = 0;
  std::map<int64_t, uint64_t> batch_histogram;  ///< batch size -> batch count

  // Request latency (enqueue -> response), from the geometric histogram.
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  double mean_us = 0.0;

  double mean_batch() const;
};

/// Thread-safe stats block; one per deployed model lane. All counts live in
/// an observe::MetricsRegistry under "serve.<lane>.*" names — pass the
/// server's registry to share one namespace across lanes, or default-
/// construct for a self-contained block (standalone batcher use/tests).
class ServeStats {
 public:
  /// Instruments registered in `reg` under the "serve.<lane>." prefix.
  ServeStats(observe::MetricsRegistry& reg, const std::string& lane);
  /// Owns a private registry (prefix "serve.lane.").
  ServeStats();

  void on_accept(int64_t queue_depth_after);
  void on_dequeue(int64_t queue_depth_after);
  void on_shed();
  void on_deadline_drop();
  void on_cancelled();
  void on_batch(int64_t batch_size);
  void on_response(uint64_t latency_us);
  void on_failure(uint64_t latency_us);

  StatsSnapshot snapshot() const;

 private:
  void bind(observe::MetricsRegistry& reg, const std::string& prefix);

  std::unique_ptr<observe::MetricsRegistry> owned_;  // only when default-constructed
  observe::Counter* requests_ = nullptr;
  observe::Counter* responses_ = nullptr;
  observe::Counter* failed_ = nullptr;
  observe::Counter* shed_ = nullptr;
  observe::Counter* deadline_dropped_ = nullptr;
  observe::Counter* cancelled_ = nullptr;  ///< dropped at dequeue on client cancel (qos)
  observe::Counter* batches_ = nullptr;
  observe::Gauge* queue_depth_ = nullptr;
  observe::Histogram* batch_sizes_ = nullptr;  // linear layout (exact counts)
  observe::Histogram* latency_ = nullptr;      // geometric layout (us)
};

/// Render one model's snapshot as a JSON object — the PR 2 schema, byte-for-
/// byte (stable key order, ": " / ", " spacing via observe::JsonWriter).
std::string to_json(const std::string& model_name, uint64_t model_version,
                    const StatsSnapshot& s);

}  // namespace tqt::serve
