// Per-model serving statistics for tqt-serve: request/response/shed counters,
// a batch-size histogram, the queue-depth high-water mark, and a geometric
// latency histogram good enough for p50/p95/p99 under heavy traffic (fixed
// memory, no per-request allocation, O(buckets) snapshot cost).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tqt::serve {

/// Latency histogram with geometrically spaced buckets (ratio 5/4, from 1us
/// up past 30 minutes, plus an overflow bucket). percentile() returns the
/// upper bound of the bucket containing the requested rank — an upper
/// estimate with at most ~25% relative error, which is plenty for a serving
/// dashboard and never under-reports a tail.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(uint64_t us);

  /// p in (0, 1]; returns 0 when no samples were recorded.
  uint64_t percentile(double p) const;

  uint64_t max_us() const { return max_; }
  double mean_us() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  uint64_t count() const { return total_; }

 private:
  std::vector<uint64_t> bounds_;  // ascending inclusive upper bounds
  std::vector<uint64_t> counts_;  // one per bound
  uint64_t total_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Point-in-time copy of one model's serving counters.
struct StatsSnapshot {
  uint64_t requests = 0;    ///< accepted by admission control
  uint64_t responses = 0;   ///< futures fulfilled with a tensor
  uint64_t failed = 0;      ///< futures fulfilled with an exception
  uint64_t shed = 0;        ///< rejected: queue already at max_queue
  uint64_t batches = 0;     ///< batches executed
  uint64_t queue_high_water = 0;
  std::map<int64_t, uint64_t> batch_histogram;  ///< batch size -> batch count

  // Request latency (enqueue -> response), from the geometric histogram.
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  double mean_us = 0.0;

  double mean_batch() const;
};

/// Thread-safe stats block; one per deployed model lane.
class ServeStats {
 public:
  void on_accept(int64_t queue_depth_after);
  void on_shed();
  void on_batch(int64_t batch_size);
  void on_response(uint64_t latency_us);
  void on_failure(uint64_t latency_us);

  StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  StatsSnapshot counters_;  // percentile fields unused until snapshot()
  LatencyHistogram latency_;
};

/// Render one model's snapshot as a JSON object (stable key order; no
/// external JSON dependency).
std::string to_json(const std::string& model_name, uint64_t model_version,
                    const StatsSnapshot& s);

}  // namespace tqt::serve
