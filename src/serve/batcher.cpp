#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>

#include "observe/observe.h"

namespace tqt::serve {

namespace {

uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
}

}  // namespace

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kOk: return "ok";
    case SubmitStatus::kShed: return "shed";
    case SubmitStatus::kShuttingDown: return "shutting_down";
    case SubmitStatus::kUnknownModel: return "unknown_model";
    case SubmitStatus::kDeadlineExceeded: return "deadline_exceeded";
    case SubmitStatus::kRateLimited: return "rate_limited";
    case SubmitStatus::kQuotaExceeded: return "quota_exceeded";
    case SubmitStatus::kCancelled: return "cancelled";
  }
  return "?";
}

MicroBatcher::MicroBatcher(BatchConfig cfg, Shape sample_shape, ExecuteFn execute,
                           ServeStats* stats)
    : cfg_(cfg), sample_shape_(std::move(sample_shape)), execute_(std::move(execute)),
      stats_(stats) {
  if (cfg_.max_batch < 1) throw std::invalid_argument("batcher: max_batch must be >= 1");
  if (cfg_.max_queue < 1) throw std::invalid_argument("batcher: max_queue must be >= 1");
  if (cfg_.num_workers < 1) throw std::invalid_argument("batcher: num_workers must be >= 1");
  workers_.reserve(static_cast<size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i) workers_.emplace_back([this] { worker_loop(); });
}

MicroBatcher::~MicroBatcher() { shutdown_and_drain(); }

SubmitResult MicroBatcher::submit(Tensor sample, SubmitOptions opts) {
  // Adapt the callback path onto a future: a shared promise fulfilled by the
  // one completion the worker delivers.
  auto promise = std::make_shared<std::promise<Tensor>>();
  SubmitResult res;
  res.response = promise->get_future();
  res.status = submit_async(std::move(sample), opts, [promise](Completion&& c) {
    if (c.error) {
      promise->set_exception(c.error);
    } else if (c.status == SubmitStatus::kDeadlineExceeded) {
      promise->set_exception(std::make_exception_ptr(DeadlineExceededError()));
    } else if (c.status == SubmitStatus::kCancelled) {
      promise->set_exception(
          std::make_exception_ptr(std::runtime_error("serve: request cancelled")));
    } else {
      promise->set_value(std::move(c.output));
    }
  });
  return res;
}

SubmitStatus MicroBatcher::submit_async(Tensor sample, SubmitOptions opts, DoneFn done) {
  TQT_TRACE("serve.enqueue", "serve");
  // Accept [sample_shape...] or an explicit leading batch dim of 1.
  Shape batched = sample_shape_;
  batched.insert(batched.begin(), 1);
  if (sample.shape() != sample_shape_ && sample.shape() != batched) {
    throw std::invalid_argument("batcher: sample shape " + shape_to_string(sample.shape()) +
                                " does not match deployed shape " +
                                shape_to_string(sample_shape_));
  }

  // The request's DWRR lane: (class, tenant, weight) from the tenant, or the
  // lane-0/normal/weight-1 default that reproduces the pre-QoS FIFO.
  const int klass = opts.tenant ? opts.tenant->klass() : qos::kClassNormal;
  const uint32_t lane = opts.tenant ? opts.tenant->lane_key() : 0;
  const int weight = opts.tenant ? opts.tenant->weight() : 1;

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return SubmitStatus::kShuttingDown;
    if (queue_.lane_depth(klass, lane) >= cfg_.max_queue) {
      stats_->on_shed();
      return SubmitStatus::kShed;
    }
    Request req;
    req.input = std::move(sample);
    req.done = std::move(done);
    req.enqueued = std::chrono::steady_clock::now();
    req.deadline = opts.deadline;
    if (req.deadline && *req.deadline <= req.enqueued) {
      // Already expired at admission — reject without queueing (and without
      // invoking the callback, mirroring the other rejection paths).
      stats_->on_deadline_drop();
      return SubmitStatus::kDeadlineExceeded;
    }
    if (opts.tenant) {
      // Charge the tenant last so a shed/expired request never burns a rate
      // token. From here the request owns one admit() and finish() pays it
      // back on every outcome.
      switch (opts.tenant->admit(qos::now_us())) {
        case qos::Admit::kRateLimited: return SubmitStatus::kRateLimited;
        case qos::Admit::kQuotaExceeded: return SubmitStatus::kQuotaExceeded;
        case qos::Admit::kOk: break;
      }
      req.tenant = opts.tenant;
    }
    req.cancel = opts.cancel;
    queue_.push(std::move(req), klass, lane, weight);
    stats_->on_accept(queue_.size());
  }
  cv_.notify_one();
  return SubmitStatus::kOk;
}

void MicroBatcher::finish(Request& req, Completion&& c) {
  req.done(std::move(c));
  if (req.tenant) req.tenant->release();
}

std::chrono::steady_clock::time_point MicroBatcher::oldest_enqueued() const {
  auto oldest = std::chrono::steady_clock::time_point::max();
  queue_.for_each_front([&](const Request& r) { oldest = std::min(oldest, r.enqueued); });
  return oldest;
}

void MicroBatcher::worker_loop() {
  // One arena + one output tensor per worker: batches reuse both, so
  // steady-state serving does no per-request heap allocation inside the
  // engine or on the result path (only the per-request response rows).
  ExecContext ctx;
  Tensor output;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained

    // Wait (bounded by max_delay_us from the OLDEST pending request across
    // all DWRR lanes) for the batch to fill. While draining, execute
    // immediately.
    const auto deadline = oldest_enqueued() + std::chrono::microseconds(cfg_.max_delay_us);
    while (!stopping_ && queue_.size() < cfg_.max_batch) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
      if (queue_.empty()) break;  // another worker took everything
    }
    if (queue_.empty()) continue;

    // Weighted-fair, deadline-and-cancel-aware dequeue: pop() walks the DWRR
    // schedule; expired or cancelled requests are completed (and counted)
    // without ever reaching the engine, and do NOT consume batch slots —
    // keep taking until the batch holds `max_batch` live requests or the
    // queue is empty.
    std::vector<Request> batch, dropped;
    const auto now = std::chrono::steady_clock::now();
    while (static_cast<int64_t>(batch.size()) < cfg_.max_batch) {
      std::optional<Request> req = queue_.pop();
      if (!req) break;
      if ((req->deadline && *req->deadline <= now) ||
          (req->cancel && req->cancel->load(std::memory_order_acquire))) {
        dropped.push_back(std::move(*req));
      } else {
        batch.push_back(std::move(*req));
      }
    }
    stats_->on_dequeue(queue_.size());
    lk.unlock();
    for (Request& req : dropped) {
      Completion c;
      const bool cancelled = req.cancel && req.cancel->load(std::memory_order_acquire) &&
                             !(req.deadline && *req.deadline <= now);
      if (cancelled) {
        stats_->on_cancelled();
        c.status = SubmitStatus::kCancelled;
      } else {
        stats_->on_deadline_drop();
        c.status = SubmitStatus::kDeadlineExceeded;
      }
      finish(req, std::move(c));
    }
    if (!batch.empty()) execute_batch(batch, ctx, output);
    lk.lock();
  }
}

void MicroBatcher::execute_batch(std::vector<Request>& batch, ExecContext& ctx,
                                 Tensor& output) {
  const auto n = static_cast<int64_t>(batch.size());
  observe::TraceSpan batch_span("serve.batch", "serve");
  batch_span.argf("n=%lld", static_cast<long long>(n));
  stats_->on_batch(n);

  // Coalesce: stack the samples along a fresh batch dimension. Row-major
  // NHWC layout makes each sample one contiguous block.
  Shape in_shape = sample_shape_;
  in_shape.insert(in_shape.begin(), n);
  Tensor input(in_shape);
  const int64_t sample_numel = numel_of(sample_shape_);
  for (int64_t i = 0; i < n; ++i) {
    std::copy_n(batch[static_cast<size_t>(i)].input.data(), sample_numel,
                input.data() + i * sample_numel);
  }

  try {
    TQT_TRACE("serve.execute", "serve");
    execute_(input, ctx, output);
    if (output.rank() < 1 || output.dim(0) != n) {
      throw std::runtime_error("batcher: execute returned batch dim " +
                               (output.rank() ? std::to_string(output.dim(0)) : "<rank 0>") +
                               ", expected " + std::to_string(n));
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (Request& req : batch) {
      stats_->on_failure(us_since(req.enqueued));
      Completion c;
      c.error = err;
      finish(req, std::move(c));
    }
    return;
  }

  // Split back into per-request responses of shape [1, ...] — exactly what a
  // single-sample engine run would have produced.
  TQT_TRACE("serve.respond", "serve");
  Shape row_shape = output.shape();
  row_shape[0] = 1;
  const int64_t row_numel = output.numel() / n;
  for (int64_t i = 0; i < n; ++i) {
    Tensor row(row_shape);
    std::copy_n(output.data() + i * row_numel, row_numel, row.data());
    Request& req = batch[static_cast<size_t>(i)];
    stats_->on_response(us_since(req.enqueued));
    Completion c;
    c.output = std::move(row);
    finish(req, std::move(c));
  }
}

void MicroBatcher::shutdown_and_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

int64_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace tqt::serve
