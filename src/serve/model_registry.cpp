#include "serve/model_registry.h"

namespace tqt::serve {

uint64_t ModelRegistry::install(const std::string& name, FixedPointProgram program) {
  auto holder = std::make_shared<const FixedPointProgram>(std::move(program));
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[name];
  e.program = std::move(holder);
  return ++e.version;
}

uint64_t ModelRegistry::install_from_file(const std::string& name, const std::string& path) {
  // Deserialize outside the lock; only the pointer swap needs it.
  return install(name, FixedPointProgram::load(path));
}

std::shared_ptr<const FixedPointProgram> ModelRegistry::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.program;
}

uint64_t ModelRegistry::version(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace tqt::serve
