// Dynamic micro-batching request queue.
//
// Single-sample requests are coalesced into batches of up to `max_batch`
// samples: the worker that picks up the oldest pending request waits at most
// `max_delay_us` (measured from that request's enqueue time) for the batch to
// fill, then executes whatever has accumulated. Because every instruction of
// the fixed-point engine is per-sample independent and integer-exact, a
// batched execution is bit-identical to running each sample alone — batching
// trades a bounded latency delay for engine-side parallel efficiency without
// touching the paper's bit-exactness contract (§4.2).
//
// Admission control: pending work is held in per-tenant/per-class DWRR lanes
// (qos/dwrr.h), each bounded by `max_queue`. A submit against a full lane is
// *shed* immediately (SubmitStatus::kShed) instead of growing the queue
// without bound — the caller gets explicit backpressure it can retry
// against, and one tenant's backlog can never evict another's. A request
// carrying a qos::TenantState is additionally charged against that tenant's
// token-bucket rate limit (kRateLimited) and max-inflight quota
// (kQuotaExceeded) at admission. shutdown_and_drain() stops admission, lets
// the workers finish every already-accepted request, and joins them;
// accepted requests are never dropped.
//
// Dequeue order is strict priority across classes and deficit-weighted round
// robin across tenants within a class (FIFO within a tenant) — QoS reorders
// which request runs next, never how any request computes, so the batched ==
// single bit-exactness contract is untouched. With no tenants configured
// everything rides one lane and the batcher degenerates to the original
// FIFO.
//
// Deadlines: a request may carry an absolute deadline (SubmitOptions). An
// already-expired deadline is rejected at admission (kDeadlineExceeded); a
// request whose deadline expires while queued is dropped when a worker
// dequeues it — *before* any engine work is spent on it — and completed with
// kDeadlineExceeded. Requests without a deadline are never deadline-dropped.
// A request whose SubmitOptions::cancel flag was set while queued is dropped
// the same way (kCancelled).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fixedpoint/engine.h"
#include "qos/dwrr.h"
#include "qos/tenant.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace tqt::serve {

struct BatchConfig {
  int64_t max_batch = 8;       ///< coalesce at most this many samples
  int64_t max_delay_us = 200;  ///< max wait (from oldest request) to fill a batch
  int64_t max_queue = 256;     ///< admission control: pending bound PER DWRR LANE
  int num_workers = 1;         ///< executor threads per model lane
};

enum class SubmitStatus {
  kOk,                ///< accepted; `response` is a valid future
  kShed,              ///< rejected: queue full (backpressure — retry later)
  kShuttingDown,      ///< rejected: server is draining
  kUnknownModel,      ///< rejected: no such deployed model
  kDeadlineExceeded,  ///< dropped: the request's deadline passed before execution
  kRateLimited,       ///< rejected: tenant token-bucket empty (qos)
  kQuotaExceeded,     ///< rejected: tenant max-inflight quota reached (qos)
  kCancelled,         ///< dropped: the client cancelled before execution
};

const char* to_string(SubmitStatus s);

/// Per-request admission options. The deadline is an absolute steady-clock
/// time point; requests still pending when it passes are dropped before any
/// engine work (the batcher never spends compute on an answer nobody is
/// waiting for). No deadline (the default) preserves PR 2 semantics exactly.
struct SubmitOptions {
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// QoS identity (tqt-qos): admission charges this tenant's token bucket
  /// and in-flight quota, and the dequeue schedules its DWRR lane by the
  /// tenant's (class, weight). Null = the unmetered default lane — exactly
  /// the pre-QoS semantics.
  std::shared_ptr<qos::TenantState> tenant;
  /// Cooperative cancel: set to true (any thread) to drop the request at
  /// dequeue with kCancelled instead of executing it. Null = not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// The exception a deadline-dropped request's future is fulfilled with (the
/// callback path reports kDeadlineExceeded directly, without an exception).
struct DeadlineExceededError : std::runtime_error {
  DeadlineExceededError() : std::runtime_error("serve: request deadline exceeded") {}
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kShuttingDown;
  std::future<Tensor> response;  ///< valid only when status == kOk
};

class MicroBatcher {
 public:
  /// `execute` maps a batched input [N, sample_shape...] to a batched output
  /// [N, ...] written into `out`; it runs on the batcher's worker threads.
  /// `sample_shape` is the per-sample shape WITHOUT the batch dimension. The
  /// ExecContext AND the output tensor are owned by the calling worker and
  /// reused across batches (and across hot-swapped program versions) — the
  /// typed engine's steady-state zero-allocation contract extends to serving
  /// (run_into resizes `out` only when the output shape changes).
  using ExecuteFn = std::function<void(const Tensor&, ExecContext&, Tensor& out)>;
  MicroBatcher(BatchConfig cfg, Shape sample_shape, ExecuteFn execute, ServeStats* stats);

  /// How one accepted request ended. Exactly one of the three applies:
  ///   status == kOk, error == nullptr   -> `output` holds the response row
  ///   status == kOk, error != nullptr   -> the batch execution threw
  ///   status == kDeadlineExceeded       -> dropped before execution
  struct Completion {
    SubmitStatus status = SubmitStatus::kOk;
    Tensor output;
    std::exception_ptr error;
  };
  /// Completion callback; runs on a batcher worker thread. Must not block
  /// and must not re-enter the batcher.
  using DoneFn = std::function<void(Completion&&)>;

  /// Drains and joins (equivalent to shutdown_and_drain()).
  ~MicroBatcher();

  /// Enqueue one sample of shape `sample_shape` (or [1, sample_shape...]).
  /// Throws std::invalid_argument on a shape mismatch; never blocks.
  SubmitResult submit(Tensor sample, SubmitOptions opts = {});

  /// Callback flavour of submit() — the admission path the network gateway
  /// drives its event loop with. `done` is invoked exactly once iff the
  /// return value is kOk (rejections are reported by return value only, so
  /// the caller can respond inline without waiting).
  SubmitStatus submit_async(Tensor sample, SubmitOptions opts, DoneFn done);

  /// Stop admitting, execute every already-queued request, join workers.
  /// Idempotent; safe to call concurrently with submit().
  void shutdown_and_drain();

  int64_t queue_depth() const;

 private:
  struct Request {
    Tensor input;
    DoneFn done;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::shared_ptr<qos::TenantState> tenant;       // admitted: release() on finish
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  void worker_loop();
  void execute_batch(std::vector<Request>& batch, ExecContext& ctx, Tensor& output);
  /// Deliver the completion, then balance the tenant's admit().
  static void finish(Request& req, Completion&& c);
  std::chrono::steady_clock::time_point oldest_enqueued() const;  // caller holds mu_

  BatchConfig cfg_;
  Shape sample_shape_;
  ExecuteFn execute_;
  ServeStats* stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  qos::DwrrQueue<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tqt::serve
