// Dynamic micro-batching request queue.
//
// Single-sample requests are coalesced into batches of up to `max_batch`
// samples: the worker that picks up the oldest pending request waits at most
// `max_delay_us` (measured from that request's enqueue time) for the batch to
// fill, then executes whatever has accumulated. Because every instruction of
// the fixed-point engine is per-sample independent and integer-exact, a
// batched execution is bit-identical to running each sample alone — batching
// trades a bounded latency delay for engine-side parallel efficiency without
// touching the paper's bit-exactness contract (§4.2).
//
// Admission control: the pending queue is bounded by `max_queue`. A submit
// against a full queue is *shed* immediately (SubmitStatus::kShed) instead of
// growing the queue without bound — the caller gets explicit backpressure it
// can retry against. shutdown_and_drain() stops admission, lets the workers
// finish every already-accepted request, and joins them; accepted requests
// are never dropped.
//
// Deadlines: a request may carry an absolute deadline (SubmitOptions). An
// already-expired deadline is rejected at admission (kDeadlineExceeded); a
// request whose deadline expires while queued is dropped when a worker
// dequeues it — *before* any engine work is spent on it — and completed with
// kDeadlineExceeded. Requests without a deadline are never deadline-dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fixedpoint/engine.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace tqt::serve {

struct BatchConfig {
  int64_t max_batch = 8;       ///< coalesce at most this many samples
  int64_t max_delay_us = 200;  ///< max wait (from oldest request) to fill a batch
  int64_t max_queue = 256;     ///< admission control: pending-request bound
  int num_workers = 1;         ///< executor threads per model lane
};

enum class SubmitStatus {
  kOk,                ///< accepted; `response` is a valid future
  kShed,              ///< rejected: queue full (backpressure — retry later)
  kShuttingDown,      ///< rejected: server is draining
  kUnknownModel,      ///< rejected: no such deployed model
  kDeadlineExceeded,  ///< dropped: the request's deadline passed before execution
};

const char* to_string(SubmitStatus s);

/// Per-request admission options. The deadline is an absolute steady-clock
/// time point; requests still pending when it passes are dropped before any
/// engine work (the batcher never spends compute on an answer nobody is
/// waiting for). No deadline (the default) preserves PR 2 semantics exactly.
struct SubmitOptions {
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// The exception a deadline-dropped request's future is fulfilled with (the
/// callback path reports kDeadlineExceeded directly, without an exception).
struct DeadlineExceededError : std::runtime_error {
  DeadlineExceededError() : std::runtime_error("serve: request deadline exceeded") {}
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kShuttingDown;
  std::future<Tensor> response;  ///< valid only when status == kOk
};

class MicroBatcher {
 public:
  /// `execute` maps a batched input [N, sample_shape...] to a batched output
  /// [N, ...] written into `out`; it runs on the batcher's worker threads.
  /// `sample_shape` is the per-sample shape WITHOUT the batch dimension. The
  /// ExecContext AND the output tensor are owned by the calling worker and
  /// reused across batches (and across hot-swapped program versions) — the
  /// typed engine's steady-state zero-allocation contract extends to serving
  /// (run_into resizes `out` only when the output shape changes).
  using ExecuteFn = std::function<void(const Tensor&, ExecContext&, Tensor& out)>;
  MicroBatcher(BatchConfig cfg, Shape sample_shape, ExecuteFn execute, ServeStats* stats);

  /// How one accepted request ended. Exactly one of the three applies:
  ///   status == kOk, error == nullptr   -> `output` holds the response row
  ///   status == kOk, error != nullptr   -> the batch execution threw
  ///   status == kDeadlineExceeded       -> dropped before execution
  struct Completion {
    SubmitStatus status = SubmitStatus::kOk;
    Tensor output;
    std::exception_ptr error;
  };
  /// Completion callback; runs on a batcher worker thread. Must not block
  /// and must not re-enter the batcher.
  using DoneFn = std::function<void(Completion&&)>;

  /// Drains and joins (equivalent to shutdown_and_drain()).
  ~MicroBatcher();

  /// Enqueue one sample of shape `sample_shape` (or [1, sample_shape...]).
  /// Throws std::invalid_argument on a shape mismatch; never blocks.
  SubmitResult submit(Tensor sample, SubmitOptions opts = {});

  /// Callback flavour of submit() — the admission path the network gateway
  /// drives its event loop with. `done` is invoked exactly once iff the
  /// return value is kOk (rejections are reported by return value only, so
  /// the caller can respond inline without waiting).
  SubmitStatus submit_async(Tensor sample, SubmitOptions opts, DoneFn done);

  /// Stop admitting, execute every already-queued request, join workers.
  /// Idempotent; safe to call concurrently with submit().
  void shutdown_and_drain();

  int64_t queue_depth() const;

 private:
  struct Request {
    Tensor input;
    DoneFn done;
    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_loop();
  void execute_batch(std::vector<Request>& batch, ExecContext& ctx, Tensor& output);

  BatchConfig cfg_;
  Shape sample_shape_;
  ExecuteFn execute_;
  ServeStats* stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tqt::serve
