// tqt-serve: batched fixed-point inference server.
//
//   registry  --(atomic program snapshot per batch)-->  batcher workers
//   clients   --submit()-->  per-model bounded queue --> micro-batches -->
//   engine (runtime/parallel thread pool) --> per-request futures
//
// One InferenceServer hosts any number of deployed models ("lanes"), each
// with its own bounded request queue, micro-batcher worker threads and stats
// block. Programs execute through the fixed-point engine, whose kernels run
// on the process-wide deterministic thread pool (src/runtime/parallel.h), so
// a batch of N samples gets intra-batch parallelism for free — and results
// stay bit-identical to single-sample runs at every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/stats.h"

namespace tqt::serve {

struct ServerConfig {
  BatchConfig batch;  ///< applied to every deployed model lane
  /// Registry the per-lane "serve.<name>.*" instruments are created in.
  /// Null (the default) gives the server a private registry — isolated
  /// counts per server instance; pass &observe::MetricsRegistry::global()
  /// to publish serving metrics alongside engine/runtime ones.
  observe::MetricsRegistry* metrics = nullptr;
  /// Optional traffic mirror: invoked with (model name, sample) on every
  /// submit/submit_async that found its lane, before admission control. Must
  /// be cheap and thread-safe — it runs on the submitting thread. The online
  /// calibration service (src/calib) uses this to retain a sampled ring of
  /// live inputs for drift detection; unset it costs one branch.
  std::function<void(const std::string& name, const Tensor& sample)> mirror;
  /// Model registry this server serves from. Null (the default) gives the
  /// server its own private registry. A sharded gateway passes one shared
  /// registry to every shard's server, so a hot-swap through any shard (or
  /// the calibration service) is visible to all shards at their next batch.
  std::shared_ptr<ModelRegistry> registry;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig cfg = {});

  /// Drains every lane (accepted requests complete) and joins all workers.
  ~InferenceServer();

  /// Deploy a compiled program under `name` with the given per-sample input
  /// shape (no batch dimension, e.g. {16, 16, 3}). Re-deploying an existing
  /// name hot-swaps the program atomically — in-flight batches finish on the
  /// old version, subsequent batches use the new one, the queue survives.
  /// Throws std::invalid_argument on an empty name/program or a non-positive
  /// sample shape (deploy and deploy_file validate through the same path and
  /// report identical errors). Returns the installed version.
  uint64_t deploy(const std::string& name, FixedPointProgram program, Shape sample_shape);

  /// Create the serving lane for `name` without installing a program —
  /// sharding support: when N servers share one registry, exactly one of
  /// them deploy()s the program and the others ensure_lane() against it.
  /// Validates the shape like deploy(); idempotent for an existing lane.
  void ensure_lane(const std::string& name, Shape sample_shape);

  /// Deploy from a serialized TQTP file; throws std::runtime_error on a
  /// missing/corrupt file, and validates exactly like deploy().
  uint64_t deploy_file(const std::string& name, const std::string& path, Shape sample_shape);

  /// Submit one sample. Returns a future (status kOk) or an explicit
  /// rejection: kShed (queue full — backpressure), kShuttingDown,
  /// kUnknownModel, or kDeadlineExceeded (opts.deadline already passed).
  /// Never blocks. A queued request whose deadline expires before execution
  /// fulfils its future with DeadlineExceededError.
  SubmitResult submit(const std::string& name, Tensor sample, SubmitOptions opts = {});

  /// Callback flavour of submit() — the entry point the tqt-gateway event
  /// loop uses. `done` runs exactly once, on a batcher worker thread, iff
  /// the return value is kOk.
  SubmitStatus submit_async(const std::string& name, Tensor sample, SubmitOptions opts,
                            MicroBatcher::DoneFn done);

  /// Stats for one deployed model (throws std::invalid_argument if unknown).
  StatsSnapshot stats(const std::string& name) const;

  /// JSON snapshot of every deployed model's stats block:
  /// {"models": [{"name": ..., "version": ..., "latency_us": {...}, ...}]}.
  std::string stats_json() const;

  /// Stop admission on every lane, drain accepted requests, join workers.
  void shutdown_and_drain();

  ModelRegistry& registry() { return *registry_; }

  /// The shared_ptr form (for wiring further servers to the same registry).
  std::shared_ptr<ModelRegistry> registry_ptr() { return registry_; }

  /// The registry holding this server's "serve.<name>.*" instruments (the
  /// config-supplied one, or the server-private default).
  observe::MetricsRegistry& metrics() { return *metrics_; }

 private:
  struct Lane {
    std::unique_ptr<ServeStats> stats;
    std::unique_ptr<MicroBatcher> batcher;
  };

  Lane* find_lane(const std::string& name) const;

  ServerConfig cfg_;
  std::unique_ptr<observe::MetricsRegistry> owned_metrics_;  // when cfg.metrics == nullptr
  observe::MetricsRegistry* metrics_ = nullptr;
  std::shared_ptr<ModelRegistry> registry_;  // cfg.registry or a private one
  mutable std::mutex mu_;  // guards the lanes_ map structure (not the lanes)
  std::map<std::string, Lane> lanes_;
};

}  // namespace tqt::serve
