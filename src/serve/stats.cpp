#include "serve/stats.h"

namespace tqt::serve {

double StatsSnapshot::mean_batch() const {
  uint64_t n = 0, sum = 0;
  for (const auto& [size, count] : batch_histogram) {
    n += count;
    sum += static_cast<uint64_t>(size) * count;
  }
  return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}

ServeStats::ServeStats(observe::MetricsRegistry& reg, const std::string& lane) {
  bind(reg, "serve." + lane + ".");
}

ServeStats::ServeStats() : owned_(std::make_unique<observe::MetricsRegistry>()) {
  bind(*owned_, "serve.lane.");
}

void ServeStats::bind(observe::MetricsRegistry& reg, const std::string& prefix) {
  requests_ = &reg.counter(prefix + "requests");
  responses_ = &reg.counter(prefix + "responses");
  failed_ = &reg.counter(prefix + "failed");
  shed_ = &reg.counter(prefix + "shed");
  deadline_dropped_ = &reg.counter(prefix + "deadline_dropped");
  cancelled_ = &reg.counter(prefix + "cancelled");
  batches_ = &reg.counter(prefix + "batches");
  queue_depth_ = &reg.gauge(prefix + "queue_depth");
  batch_sizes_ = &reg.histogram(prefix + "batch_size", observe::Histogram::Layout::kLinear);
  latency_ = &reg.histogram(prefix + "latency_us", observe::Histogram::Layout::kGeometricUs);
}

void ServeStats::on_accept(int64_t queue_depth_after) {
  requests_->inc();
  queue_depth_->set(queue_depth_after);
}

void ServeStats::on_dequeue(int64_t queue_depth_after) {
  queue_depth_->set(queue_depth_after);
}

void ServeStats::on_shed() { shed_->inc(); }

void ServeStats::on_deadline_drop() { deadline_dropped_->inc(); }

void ServeStats::on_cancelled() { cancelled_->inc(); }

void ServeStats::on_batch(int64_t batch_size) {
  batches_->inc();
  batch_sizes_->record(static_cast<uint64_t>(batch_size));
}

void ServeStats::on_response(uint64_t latency_us) {
  responses_->inc();
  latency_->record(latency_us);
}

void ServeStats::on_failure(uint64_t latency_us) {
  failed_->inc();
  latency_->record(latency_us);
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.requests = requests_->value();
  s.responses = responses_->value();
  s.failed = failed_->value();
  s.shed = shed_->value();
  s.deadline_dropped = deadline_dropped_->value();
  s.batches = batches_->value();
  s.queue_high_water = static_cast<uint64_t>(queue_depth_->high_water());

  const observe::HistogramSnapshot sizes = batch_sizes_->snapshot();
  for (const auto& [bound, count] : sizes.buckets) {
    // The linear layout is exact for every batch size the batcher can
    // produce (max_batch << kLinearMax); clamp a pathological overflow
    // bucket to the observed max rather than reporting 2^64.
    const uint64_t size = bound <= observe::Histogram::kLinearMax ? bound : sizes.max;
    s.batch_histogram[static_cast<int64_t>(size)] += count;
  }

  const observe::HistogramSnapshot lat = latency_->snapshot();
  s.p50_us = lat.percentile(0.50);
  s.p95_us = lat.percentile(0.95);
  s.p99_us = lat.percentile(0.99);
  s.max_us = lat.max;
  s.mean_us = lat.mean();
  return s;
}

std::string to_json(const std::string& model_name, uint64_t model_version,
                    const StatsSnapshot& s) {
  observe::JsonWriter w;
  w.obj();
  w.kv("name", model_name);
  w.kv("version", model_version);
  w.kv("requests", s.requests);
  w.kv("responses", s.responses);
  w.kv("failed", s.failed);
  w.kv("shed", s.shed);
  w.kv("deadline_dropped", s.deadline_dropped);
  w.kv("batches", s.batches);
  w.kv("queue_high_water", s.queue_high_water);
  w.kv("mean_batch", s.mean_batch());
  w.key("batch_histogram").arr();
  for (const auto& [size, count] : s.batch_histogram) {
    w.arr().value(size).value(count).end();
  }
  w.end();
  w.key("latency_us").obj();
  w.kv("p50", s.p50_us);
  w.kv("p95", s.p95_us);
  w.kv("p99", s.p99_us);
  w.kv("max", s.max_us);
  w.kv("mean", s.mean_us);
  w.end();
  w.end();
  return w.take();
}

}  // namespace tqt::serve
