#include "serve/stats.h"

#include <algorithm>
#include <sstream>

namespace tqt::serve {

LatencyHistogram::LatencyHistogram() {
  // Geometric bounds: 1us, then *5/4 (integer, strictly increasing) until we
  // pass 2^31 us (~36 minutes); one overflow bucket catches the rest.
  uint64_t b = 1;
  while (b < (uint64_t{1} << 31)) {
    bounds_.push_back(b);
    const uint64_t next = b + b / 4;
    b = next > b ? next : b + 1;
  }
  bounds_.push_back(UINT64_MAX);
  counts_.assign(bounds_.size(), 0);
}

void LatencyHistogram::record(uint64_t us) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), us);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++total_;
  sum_ += static_cast<double>(us);
  if (us > max_) max_ = us;
}

uint64_t LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  const auto rank = static_cast<uint64_t>(p * static_cast<double>(total_) + 0.5);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank && counts_[i] > 0) {
      // Clamp the overflow bucket to the true max so we never report 2^64.
      return std::min(bounds_[i], max_);
    }
  }
  return max_;
}

double StatsSnapshot::mean_batch() const {
  uint64_t n = 0, sum = 0;
  for (const auto& [size, count] : batch_histogram) {
    n += count;
    sum += static_cast<uint64_t>(size) * count;
  }
  return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}

void ServeStats::on_accept(int64_t queue_depth_after) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.requests;
  const auto depth = static_cast<uint64_t>(queue_depth_after);
  if (depth > counters_.queue_high_water) counters_.queue_high_water = depth;
}

void ServeStats::on_shed() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.shed;
}

void ServeStats::on_batch(int64_t batch_size) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.batches;
  ++counters_.batch_histogram[batch_size];
}

void ServeStats::on_response(uint64_t latency_us) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.responses;
  latency_.record(latency_us);
}

void ServeStats::on_failure(uint64_t latency_us) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.failed;
  latency_.record(latency_us);
}

StatsSnapshot ServeStats::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  StatsSnapshot s = counters_;
  s.p50_us = latency_.percentile(0.50);
  s.p95_us = latency_.percentile(0.95);
  s.p99_us = latency_.percentile(0.99);
  s.max_us = latency_.max_us();
  s.mean_us = latency_.mean_us();
  return s;
}

std::string to_json(const std::string& model_name, uint64_t model_version,
                    const StatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"name\": \"" << model_name << "\", \"version\": " << model_version
     << ", \"requests\": " << s.requests << ", \"responses\": " << s.responses
     << ", \"failed\": " << s.failed << ", \"shed\": " << s.shed
     << ", \"batches\": " << s.batches << ", \"queue_high_water\": " << s.queue_high_water
     << ", \"mean_batch\": " << s.mean_batch() << ", \"batch_histogram\": [";
  bool first = true;
  for (const auto& [size, count] : s.batch_histogram) {
    if (!first) os << ", ";
    first = false;
    os << "[" << size << ", " << count << "]";
  }
  os << "], \"latency_us\": {\"p50\": " << s.p50_us << ", \"p95\": " << s.p95_us
     << ", \"p99\": " << s.p99_us << ", \"max\": " << s.max_us << ", \"mean\": " << s.mean_us
     << "}}";
  return os.str();
}

}  // namespace tqt::serve
