// Versioned registry of deployed fixed-point programs.
//
// A model name maps to an immutable, reference-counted FixedPointProgram
// plus a monotonically increasing version. install() replaces the program
// atomically: in-flight batches keep executing against the shared_ptr they
// already snapshotted, new batches pick up the new version — a hot swap with
// no pause and no torn state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fixedpoint/engine.h"

namespace tqt::serve {

class ModelRegistry {
 public:
  /// Install (or replace) `name`; returns the new version (1 on first
  /// install, previous + 1 on a hot swap).
  uint64_t install(const std::string& name, FixedPointProgram program);

  /// Deserialize a TQTP file and install it. Throws std::runtime_error on a
  /// missing/corrupt/mismatched-version file (see FixedPointProgram::load).
  uint64_t install_from_file(const std::string& name, const std::string& path);

  /// Current program for `name`, or nullptr if not deployed. The returned
  /// pointer stays valid (and immutable) across any concurrent install().
  std::shared_ptr<const FixedPointProgram> lookup(const std::string& name) const;

  /// Current version of `name`; 0 if not deployed.
  uint64_t version(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<const FixedPointProgram> program;
    uint64_t version = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace tqt::serve
