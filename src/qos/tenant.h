// tqt-qos tenancy: who is allowed to run how much, and at what priority.
//
// A *tenant* is an authenticated traffic source. The wire protocol (v2)
// carries an auth token per request; the gateway resolves it through a
// TenantTable into a TenantState, which travels with the request into the
// MicroBatcher:
//
//   token ──TenantTable::resolve──► TenantState
//            │ token-bucket rate limit  → RATE_LIMITED at admission
//            │ max-inflight quota       → QUOTA_EXCEEDED at admission
//            │ priority class + weight  → DWRR lane (qos/dwrr.h)
//            ▼
//          per-tenant "qos.tenant.<name>.*" counters
//
// One TenantState is shared by every gateway shard (quotas are global, not
// per-shard), so every method on it is thread-safe. The table is loaded from
// a simple line-oriented config file and is hot-reloadable: a reload swaps
// limits/weights in place but PRESERVES runtime state (bucket level,
// in-flight count) for tenants that survive the reload — a config push never
// resets quotas mid-flight. Tokens that stop resolving fall back to the
// default tenant on their next request.
//
// Config file format (one tenant per line, '#' comments, blank lines ok):
//
//   token=alice-secret tenant=alice class=high weight=4 rate=200 burst=40 max_inflight=8
//   token=*            tenant=default class=normal weight=1
//
// Keys: token (required; "*" configures the default tenant), tenant
// (required; unique display name), class (low|normal|high, default normal),
// weight (int >= 1, default 1), rate (requests/s, 0 = unlimited, default 0),
// burst (bucket capacity, default max(rate, 1)), max_inflight (0 =
// unlimited, default 0). Parse errors throw with a one-line
// "path:line: reason" message and leave the previous table installed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "observe/observe.h"

namespace tqt::qos {

/// Strict-priority classes for the weighted-fair dequeue: every backlogged
/// high request is served before any normal one, and so on. Within a class,
/// tenants share by DWRR weight.
inline constexpr int kClassLow = 0;
inline constexpr int kClassNormal = 1;
inline constexpr int kClassHigh = 2;
inline constexpr int kNumClasses = 3;

/// "low"/"normal"/"high" (for config parsing and reports).
const char* class_name(int klass);
/// Returns kClass* or -1 if `s` is not a class name.
int class_from_name(std::string_view s);

/// Steady-clock microseconds — the time base every bucket runs on. Tests
/// pass explicit values instead for determinism.
int64_t now_us();

/// Classic token bucket: `rate` tokens/second refill up to `burst` capacity;
/// each admitted request takes one token. rate == 0 means unlimited (always
/// admits). Thread-safe; time is supplied by the caller so behaviour is
/// exactly reproducible in tests.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Take one token at time `t_us`; false = rate-limited.
  bool try_take(int64_t t_us);

  /// Swap limits in place (hot reload). The current fill level is clamped to
  /// the new burst but otherwise preserved.
  void configure(double rate_per_s, double burst);

  double level(int64_t t_us);  ///< tokens available at `t_us` (for tests)

 private:
  void refill(int64_t t_us);  // caller holds mu_

  std::mutex mu_;
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  int64_t last_us_ = -1;  // -1: bucket starts full at first use
};

/// Admission verdict for one request against one tenant.
enum class Admit : uint8_t {
  kOk = 0,
  kRateLimited,    ///< token bucket empty — typed RATE_LIMITED to the client
  kQuotaExceeded,  ///< max_inflight reached — typed QUOTA_EXCEEDED
};

const char* to_string(Admit a);

/// Immutable identity + mutable limits for one tenant. Shared (shared_ptr)
/// between the table, every gateway shard and every queued request; all
/// methods are thread-safe. `lane_key` is a small stable integer naming this
/// tenant's DWRR lane — stable across hot reloads so a reload never
/// reshuffles queues.
class TenantState {
 public:
  TenantState(std::string name, uint32_t lane_key);

  /// Charge one request: rate bucket first, then the in-flight quota. On
  /// kOk the caller MUST balance with release() when the request completes
  /// (any outcome). Also bumps the per-tenant counters.
  Admit admit(int64_t t_us);
  void release();

  /// Swap limits/class/weight in place (hot reload); binds the per-tenant
  /// "qos.tenant.<name>.*" counters in `reg` on first call (null = no
  /// metrics).
  void configure(int klass, int weight, double rate_rps, double burst, int64_t max_inflight,
                 observe::MetricsRegistry* reg);

  const std::string& name() const { return name_; }
  uint32_t lane_key() const { return lane_key_; }
  int klass() const { return klass_.load(std::memory_order_relaxed); }
  int weight() const { return weight_.load(std::memory_order_relaxed); }
  int64_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  int64_t max_inflight() const { return max_inflight_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  const uint32_t lane_key_;
  std::atomic<int> klass_{kClassNormal};
  std::atomic<int> weight_{1};
  std::atomic<int64_t> max_inflight_{0};  // 0 = unlimited
  std::atomic<int64_t> inflight_{0};
  TokenBucket bucket_{0.0, 1.0};

  // "qos.tenant.<name>.*" instruments; null until configure() ran with a
  // registry. Instruments live in the registry, so raw pointers stay valid.
  std::atomic<observe::Counter*> requests_{nullptr};
  std::atomic<observe::Counter*> admitted_{nullptr};
  std::atomic<observe::Counter*> rate_limited_{nullptr};
  std::atomic<observe::Counter*> quota_exceeded_{nullptr};
};

/// One parsed config line.
struct TenantConfig {
  std::string token;        ///< "*" = the default tenant
  std::string name;         ///< unique display name ("default" for token=*)
  int klass = kClassNormal;
  int weight = 1;
  double rate_rps = 0.0;    ///< 0 = unlimited
  double burst = 0.0;       ///< 0 = max(rate_rps, 1)
  int64_t max_inflight = 0; ///< 0 = unlimited
};

/// token -> TenantState map with hot reload. A table always contains a
/// default tenant (unlimited, class normal, weight 1 unless token=* says
/// otherwise): v1 frames, empty tokens and unknown tokens all resolve to it,
/// so an untenanted deployment behaves exactly like the pre-QoS gateway.
class TenantTable {
 public:
  /// Starts with just the built-in default tenant. Per-tenant counters are
  /// created in `metrics` (null = no metrics).
  explicit TenantTable(observe::MetricsRegistry* metrics = nullptr);

  /// Parse `path` into configs (no side effects on failure). Throws
  /// std::runtime_error with a one-line "path:line: reason" message.
  static std::vector<TenantConfig> parse_file(const std::string& path);

  /// Parse + install `path`; remembers it for reload(). Strong guarantee:
  /// on a parse error the previous table stays installed.
  void load_file(const std::string& path);

  /// Install configs directly (tests / bench). Same reload semantics.
  void load(const std::vector<TenantConfig>& configs);

  /// Re-load the last load_file() path (the admin-plane hot-reload hook).
  /// Throws if no file was ever loaded.
  void reload();

  /// Empty or unknown tokens resolve to the default tenant (never null).
  std::shared_ptr<TenantState> resolve(std::string_view token) const;
  std::shared_ptr<TenantState> default_tenant() const;

  size_t size() const;                    ///< tenants incl. the default
  std::vector<std::string> names() const; ///< sorted tenant names
  std::string file() const;               ///< last load_file path ("" if none)

 private:
  void install(const std::vector<TenantConfig>& configs);  // caller holds mu_

  observe::MetricsRegistry* metrics_ = nullptr;
  mutable std::mutex mu_;
  std::string file_;
  uint32_t next_lane_key_ = 1;  // 0 is reserved for the default tenant
  std::map<std::string, std::shared_ptr<TenantState>, std::less<>> by_token_;
  std::map<std::string, std::shared_ptr<TenantState>> by_name_;  // reload state carry-over
  std::shared_ptr<TenantState> default_;
};

}  // namespace tqt::qos
