#include "qos/tenant.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace tqt::qos {

const char* class_name(int klass) {
  switch (klass) {
    case kClassLow: return "low";
    case kClassNormal: return "normal";
    case kClassHigh: return "high";
  }
  return "?";
}

int class_from_name(std::string_view s) {
  if (s == "low") return kClassLow;
  if (s == "normal") return kClassNormal;
  if (s == "high") return kClassHigh;
  return -1;
}

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* to_string(Admit a) {
  switch (a) {
    case Admit::kOk: return "ok";
    case Admit::kRateLimited: return "rate_limited";
    case Admit::kQuotaExceeded: return "quota_exceeded";
  }
  return "?";
}

// ---- TokenBucket -----------------------------------------------------------

TokenBucket::TokenBucket(double rate_per_s, double burst) { configure(rate_per_s, burst); }

void TokenBucket::configure(double rate_per_s, double burst) {
  std::lock_guard<std::mutex> lk(mu_);
  rate_ = std::max(0.0, rate_per_s);
  burst_ = std::max(1.0, burst);
  if (last_us_ < 0) {
    tokens_ = burst_;  // start full
  } else {
    tokens_ = std::min(tokens_, burst_);
  }
}

void TokenBucket::refill(int64_t t_us) {
  if (last_us_ < 0) {
    tokens_ = burst_;
  } else if (t_us > last_us_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * static_cast<double>(t_us - last_us_) * 1e-6);
  }
  last_us_ = std::max(last_us_, t_us);
}

bool TokenBucket::try_take(int64_t t_us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (rate_ <= 0.0) return true;  // unlimited
  refill(t_us);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::level(int64_t t_us) {
  std::lock_guard<std::mutex> lk(mu_);
  refill(t_us);
  return rate_ <= 0.0 ? burst_ : tokens_;
}

// ---- TenantState -----------------------------------------------------------

TenantState::TenantState(std::string name, uint32_t lane_key)
    : name_(std::move(name)), lane_key_(lane_key) {}

void TenantState::configure(int klass, int weight, double rate_rps, double burst,
                            int64_t max_inflight, observe::MetricsRegistry* reg) {
  klass_.store(std::clamp(klass, kClassLow, kClassHigh), std::memory_order_relaxed);
  weight_.store(std::max(1, weight), std::memory_order_relaxed);
  max_inflight_.store(std::max<int64_t>(0, max_inflight), std::memory_order_relaxed);
  bucket_.configure(rate_rps, burst > 0.0 ? burst : std::max(rate_rps, 1.0));
  if (reg && !requests_.load(std::memory_order_acquire)) {
    const std::string p = "qos.tenant." + name_ + ".";
    admitted_.store(&reg->counter(p + "admitted"), std::memory_order_relaxed);
    rate_limited_.store(&reg->counter(p + "rate_limited"), std::memory_order_relaxed);
    quota_exceeded_.store(&reg->counter(p + "quota_exceeded"), std::memory_order_relaxed);
    requests_.store(&reg->counter(p + "requests"), std::memory_order_release);
  }
}

Admit TenantState::admit(int64_t t_us) {
  if (auto* c = requests_.load(std::memory_order_acquire)) c->inc();
  if (!bucket_.try_take(t_us)) {
    if (auto* c = rate_limited_.load(std::memory_order_relaxed)) c->inc();
    return Admit::kRateLimited;
  }
  // Reserve the in-flight slot optimistically; back out on quota breach so
  // concurrent admits from different shards never overshoot the quota.
  const int64_t quota = max_inflight_.load(std::memory_order_relaxed);
  const int64_t now_inflight = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (quota > 0 && now_inflight > quota) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (auto* c = quota_exceeded_.load(std::memory_order_relaxed)) c->inc();
    return Admit::kQuotaExceeded;
  }
  if (auto* c = admitted_.load(std::memory_order_relaxed)) c->inc();
  return Admit::kOk;
}

void TenantState::release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

// ---- TenantTable -----------------------------------------------------------

namespace {

[[noreturn]] void parse_fail(const std::string& path, int line, const std::string& why) {
  throw std::runtime_error(path + ":" + std::to_string(line) + ": " + why);
}

}  // namespace

std::vector<TenantConfig> TenantTable::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("tenants: cannot open '" + path + "'");
  std::vector<TenantConfig> configs;
  std::set<std::string> tokens, names;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kv;
    TenantConfig cfg;
    bool saw_token = false, saw_name = false;
    bool any = false;
    while (ls >> kv) {
      any = true;
      const size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        parse_fail(path, lineno, "expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (val.empty()) parse_fail(path, lineno, "empty value for '" + key + "'");
      try {
        if (key == "token") {
          cfg.token = val;
          saw_token = true;
        } else if (key == "tenant") {
          cfg.name = val;
          saw_name = true;
        } else if (key == "class") {
          cfg.klass = class_from_name(val);
          if (cfg.klass < 0) parse_fail(path, lineno, "class must be low|normal|high");
        } else if (key == "weight") {
          size_t used = 0;
          cfg.weight = std::stoi(val, &used);
          if (used != val.size() || cfg.weight < 1) {
            parse_fail(path, lineno, "weight must be an integer >= 1");
          }
        } else if (key == "rate") {
          size_t used = 0;
          cfg.rate_rps = std::stod(val, &used);
          if (used != val.size() || cfg.rate_rps < 0.0) {
            parse_fail(path, lineno, "rate must be a number >= 0");
          }
        } else if (key == "burst") {
          size_t used = 0;
          cfg.burst = std::stod(val, &used);
          if (used != val.size() || cfg.burst <= 0.0) {
            parse_fail(path, lineno, "burst must be a number > 0");
          }
        } else if (key == "max_inflight") {
          size_t used = 0;
          cfg.max_inflight = std::stoll(val, &used);
          if (used != val.size() || cfg.max_inflight < 0) {
            parse_fail(path, lineno, "max_inflight must be an integer >= 0");
          }
        } else {
          parse_fail(path, lineno, "unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        parse_fail(path, lineno, "bad number for '" + key + "'");
      } catch (const std::out_of_range&) {
        parse_fail(path, lineno, "number out of range for '" + key + "'");
      }
    }
    if (!any) continue;  // blank / comment-only line
    if (!saw_token) parse_fail(path, lineno, "missing token=");
    if (!saw_name) parse_fail(path, lineno, "missing tenant=");
    if (cfg.token == "*" && cfg.name != "default") {
      parse_fail(path, lineno, "token=* must be tenant=default");
    }
    if (!tokens.insert(cfg.token).second) {
      parse_fail(path, lineno, "duplicate token '" + cfg.token + "'");
    }
    if (!names.insert(cfg.name).second) {
      parse_fail(path, lineno, "duplicate tenant '" + cfg.name + "'");
    }
    configs.push_back(std::move(cfg));
  }
  return configs;
}

TenantTable::TenantTable(observe::MetricsRegistry* metrics) : metrics_(metrics) {
  default_ = std::make_shared<TenantState>("default", /*lane_key=*/0);
  default_->configure(kClassNormal, 1, 0.0, 0.0, 0, metrics_);
  by_name_.emplace("default", default_);
}

void TenantTable::install(const std::vector<TenantConfig>& configs) {
  std::map<std::string, std::shared_ptr<TenantState>, std::less<>> by_token;
  for (const TenantConfig& cfg : configs) {
    std::shared_ptr<TenantState> state;
    const auto existing = by_name_.find(cfg.name);
    if (existing != by_name_.end()) {
      state = existing->second;  // reload: keep bucket level + inflight count
    } else {
      state = std::make_shared<TenantState>(cfg.name, next_lane_key_++);
      by_name_.emplace(cfg.name, state);
    }
    state->configure(cfg.klass, cfg.weight, cfg.rate_rps, cfg.burst, cfg.max_inflight,
                     metrics_);
    if (cfg.token != "*") by_token.emplace(cfg.token, state);
  }
  by_token_ = std::move(by_token);
}

void TenantTable::load_file(const std::string& path) {
  const std::vector<TenantConfig> configs = parse_file(path);  // throws; table untouched
  std::lock_guard<std::mutex> lk(mu_);
  install(configs);
  file_ = path;
}

void TenantTable::load(const std::vector<TenantConfig>& configs) {
  std::lock_guard<std::mutex> lk(mu_);
  install(configs);
}

void TenantTable::reload() {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    path = file_;
  }
  if (path.empty()) throw std::runtime_error("tenants: no config file to reload");
  load_file(path);
}

std::shared_ptr<TenantState> TenantTable::resolve(std::string_view token) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (!token.empty()) {
    const auto it = by_token_.find(token);
    if (it != by_token_.end()) return it->second;
  }
  return default_;
}

std::shared_ptr<TenantState> TenantTable::default_tenant() const {
  std::lock_guard<std::mutex> lk(mu_);
  return default_;
}

size_t TenantTable::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return by_name_.size();
}

std::vector<std::string> TenantTable::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, state] : by_name_) out.push_back(name);
  return out;
}

std::string TenantTable::file() const {
  std::lock_guard<std::mutex> lk(mu_);
  return file_;
}

}  // namespace tqt::qos
