// tqt-qos sharding: N reactor event loops over one port, one model registry.
//
//   clients ──TCP──►  shard 0  (poll loop, "net.shard0.*" metrics)
//                     shard 1  (poll loop, "net.shard1.*" metrics)
//                     ...          │ each shard: its own InferenceServer
//                                  │ (batcher lanes) over the SHARED
//                                  │ ModelRegistry + MetricsRegistry
//                                  ▼
//                     hot-swap through any shard lands on all shards
//                     at their next batch boundary
//
// Two distribution modes:
//   * kReusePort — every shard binds the same port with SO_REUSEPORT and the
//     kernel spreads incoming connections across the listeners. Preferred.
//   * kHandoff — shard 0 owns the only listener and round-robins accepted
//     fds to the other shards via Gateway::adopt_connection(). Fallback for
//     kernels/filters where a second SO_REUSEPORT bind fails.
//   kAuto (default) tries kReusePort and falls back to kHandoff.
//
// All shards share one TenantTable, so per-tenant rate limits and inflight
// quotas are enforced globally (TokenBucket / TenantState are thread-safe),
// and one MetricsRegistry, so "serve.<model>.*" and "qos.tenant.<name>.*"
// instruments aggregate across shards while "net.shard<i>.*" stays per-shard.
//
// Drain barrier: stop_and_drain() first flips every shard into graceful
// drain (so no shard keeps accepting while another answers SHUTTING_DOWN),
// then joins them all, then drains the batcher lanes — every in-flight
// request is answered before the destructor returns. request_stop() is
// async-signal-safe, suitable for SIGINT/SIGTERM handlers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/gateway.h"
#include "qos/tenant.h"
#include "serve/server.h"

namespace tqt::qos {

enum class ShardMode : uint8_t {
  kAuto = 0,       ///< try SO_REUSEPORT, fall back to accept handoff
  kReusePort = 1,  ///< SO_REUSEPORT only; throws if the binds fail
  kHandoff = 2,    ///< shard 0 accepts and hands fds to the others
};

std::string to_string(ShardMode m);

struct ShardedGatewayConfig {
  int num_shards = 2;            ///< reactor count; 1 degenerates to a plain gateway
  ShardMode mode = ShardMode::kAuto;
  uint16_t port = 0;             ///< TCP port; 0 binds an ephemeral port
  bool loopback_only = true;
  int backlog = 64;
  int max_connections = 64;      ///< per shard
  int max_inflight = 256;        ///< per shard
  int drain_timeout_ms = 5000;
  serve::BatchConfig batch;      ///< applied to every shard's lanes
  net::AdminHandler* admin = nullptr;  ///< shared admin plane (all shards route to it)
  /// Shared tenant table; null = untenanted. Must outlive the gateway.
  TenantTable* tenants = nullptr;
  /// Metrics registry all shards publish into; null = one private registry
  /// owned by the ShardedGateway.
  observe::MetricsRegistry* metrics = nullptr;
  // Slow-loris bounds, forwarded to every shard (see net/gateway.h).
  size_t max_conn_out_bytes = 32u << 20;
  int write_stall_timeout_ms = 10000;
  int read_stall_timeout_ms = 10000;
};

/// N-reactor serving front-end. Construction spawns every shard (binding
/// sockets and starting loops); destruction drains them all.
class ShardedGateway {
 public:
  explicit ShardedGateway(ShardedGatewayConfig cfg = {});
  ~ShardedGateway();
  ShardedGateway(const ShardedGateway&) = delete;
  ShardedGateway& operator=(const ShardedGateway&) = delete;

  /// The bound TCP port (shared by every shard).
  uint16_t port() const { return port_; }

  /// The distribution mode actually in effect (resolves kAuto).
  ShardMode mode() const { return mode_; }

  int num_shards() const { return static_cast<int>(gateways_.size()); }

  /// Deploy a model on every shard: one install into the shared registry,
  /// one batcher lane per shard. Validates like InferenceServer::deploy.
  uint64_t deploy(const std::string& name, FixedPointProgram program, Shape sample_shape);
  uint64_t deploy_file(const std::string& name, const std::string& path, Shape sample_shape);

  /// The registry all shards serve from (hot-swap target).
  serve::ModelRegistry& registry() { return *registry_; }

  /// The metrics registry carrying net.shard<i>.*, serve.*, qos.tenant.*.
  observe::MetricsRegistry& metrics() { return *metrics_; }

  /// Shard 0's server (every shard serves the same lane set — handy for
  /// stats_json in tools).
  serve::InferenceServer& server() { return *servers_.front(); }

  /// Async-signal-safe: begin graceful drain on every shard.
  void request_stop();

  /// Drain barrier: all shards stop accepting, every in-flight request on
  /// every shard is answered and flushed, loops join, lanes drain. Idempotent.
  void stop_and_drain();

  /// True once every shard's event loop has exited.
  bool stopped() const;

 private:
  ShardedGatewayConfig cfg_;
  ShardMode mode_ = ShardMode::kAuto;
  uint16_t port_ = 0;
  std::unique_ptr<observe::MetricsRegistry> owned_metrics_;
  observe::MetricsRegistry* metrics_ = nullptr;
  std::shared_ptr<serve::ModelRegistry> registry_;
  std::vector<std::unique_ptr<serve::InferenceServer>> servers_;
  std::vector<std::unique_ptr<net::Gateway>> gateways_;
  std::atomic<uint64_t> rr_{0};  ///< handoff round-robin cursor
};

}  // namespace tqt::qos
