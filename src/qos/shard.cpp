#include "qos/shard.h"

#include <stdexcept>

namespace tqt::qos {

std::string to_string(ShardMode m) {
  switch (m) {
    case ShardMode::kAuto: return "auto";
    case ShardMode::kReusePort: return "reuseport";
    case ShardMode::kHandoff: return "handoff";
  }
  return "unknown";
}

ShardedGateway::ShardedGateway(ShardedGatewayConfig cfg) : cfg_(cfg) {
  if (cfg_.num_shards < 1) {
    throw std::invalid_argument("qos: num_shards must be >= 1");
  }
  if (cfg_.metrics) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<observe::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  registry_ = std::make_shared<serve::ModelRegistry>();

  // One InferenceServer per shard: private batcher lanes (so reactors never
  // contend on a queue mutex), shared registry and metrics.
  servers_.reserve(static_cast<size_t>(cfg_.num_shards));
  for (int i = 0; i < cfg_.num_shards; ++i) {
    serve::ServerConfig scfg;
    scfg.batch = cfg_.batch;
    scfg.metrics = metrics_;
    scfg.registry = registry_;
    servers_.push_back(std::make_unique<serve::InferenceServer>(scfg));
  }

  const auto shard_cfg = [this](int i) {
    net::GatewayConfig g;
    g.port = port_ != 0 ? port_ : cfg_.port;
    g.loopback_only = cfg_.loopback_only;
    g.backlog = cfg_.backlog;
    g.max_connections = cfg_.max_connections;
    g.max_inflight = cfg_.max_inflight;
    g.drain_timeout_ms = cfg_.drain_timeout_ms;
    g.admin = cfg_.admin;
    g.tenants = cfg_.tenants;
    g.metric_prefix = "net.shard" + std::to_string(i) + ".";
    g.max_conn_out_bytes = cfg_.max_conn_out_bytes;
    g.write_stall_timeout_ms = cfg_.write_stall_timeout_ms;
    g.read_stall_timeout_ms = cfg_.read_stall_timeout_ms;
    return g;
  };

  const auto build_reuseport = [&] {
    gateways_.resize(static_cast<size_t>(cfg_.num_shards));
    for (int i = 0; i < cfg_.num_shards; ++i) {
      net::GatewayConfig g = shard_cfg(i);
      g.reuse_port = true;
      gateways_[static_cast<size_t>(i)] =
          std::make_unique<net::Gateway>(*servers_[static_cast<size_t>(i)], g);
      // Shard 0 picks the (possibly ephemeral) port; the rest join it.
      if (i == 0) port_ = gateways_[0]->port();
    }
    mode_ = ShardMode::kReusePort;
  };

  const auto build_handoff = [&] {
    gateways_.resize(static_cast<size_t>(cfg_.num_shards));
    // Non-listening shards first: shard 0's accept sink may fire as soon as
    // its loop starts, and it must only route to fully constructed gateways.
    for (int i = 1; i < cfg_.num_shards; ++i) {
      net::GatewayConfig g = shard_cfg(i);
      g.listen = false;
      gateways_[static_cast<size_t>(i)] =
          std::make_unique<net::Gateway>(*servers_[static_cast<size_t>(i)], g);
    }
    net::GatewayConfig g0 = shard_cfg(0);
    const int n = cfg_.num_shards;
    if (n > 1) {
      g0.accept_sink = [this, n](int fd) {
        const size_t k = static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                             static_cast<uint64_t>(n));
        if (k == 0) return false;  // shard 0 keeps this one
        net::Gateway* g = gateways_[k].get();
        // A draining shard refuses adoption; shard 0 serves the tail itself.
        return g != nullptr && g->adopt_connection(fd);
      };
    }
    gateways_[0] = std::make_unique<net::Gateway>(*servers_[0], g0);
    port_ = gateways_[0]->port();
    mode_ = ShardMode::kHandoff;
  };

  if (cfg_.num_shards == 1 || cfg_.mode == ShardMode::kReusePort) {
    build_reuseport();
  } else if (cfg_.mode == ShardMode::kHandoff) {
    build_handoff();
  } else {  // kAuto: prefer the kernel's SO_REUSEPORT spreading
    try {
      build_reuseport();
    } catch (const std::runtime_error&) {
      gateways_.clear();
      port_ = 0;
      build_handoff();
    }
  }
}

ShardedGateway::~ShardedGateway() { stop_and_drain(); }

uint64_t ShardedGateway::deploy(const std::string& name, FixedPointProgram program,
                                Shape sample_shape) {
  // One install into the shared registry (server 0 validates), then a lane on
  // every other shard against the same program snapshot.
  const uint64_t version = servers_[0]->deploy(name, std::move(program), sample_shape);
  for (size_t i = 1; i < servers_.size(); ++i) {
    servers_[i]->ensure_lane(name, sample_shape);
  }
  return version;
}

uint64_t ShardedGateway::deploy_file(const std::string& name, const std::string& path,
                                     Shape sample_shape) {
  return deploy(name, FixedPointProgram::load(path), std::move(sample_shape));
}

void ShardedGateway::request_stop() {
  for (auto& g : gateways_) {
    if (g) g->request_stop();
  }
}

void ShardedGateway::stop_and_drain() {
  // Barrier phase 1: every shard flips into graceful drain together, so no
  // shard keeps accepting work another shard would refuse.
  request_stop();
  // Phase 2: each loop answers its in-flight requests, flushes and joins.
  for (auto& g : gateways_) {
    if (g) g->stop_and_drain();
  }
  // Phase 3: batcher lanes drain (no-op if the gateways answered everything).
  for (auto& s : servers_) {
    if (s) s->shutdown_and_drain();
  }
}

bool ShardedGateway::stopped() const {
  for (const auto& g : gateways_) {
    if (g && !g->stopped()) return false;
  }
  return true;
}

}  // namespace tqt::qos
