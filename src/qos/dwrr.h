// Deficit-weighted round-robin queue for the MicroBatcher's weighted-fair
// dequeue (tqt-qos).
//
// Work is held in *lanes* keyed by (priority class, tenant lane_key). Across
// classes the discipline is strict priority: pop() never serves a normal
// item while any high lane is backlogged. Within a class, backlogged lanes
// share service in proportion to their weights via classic deficit round
// robin with unit cost per item: each lane visit replenishes the lane's
// deficit by quantum * weight, and the lane may dequeue while its deficit
// lasts.
//
// Invariants (asserted in test_qos):
//   * FIFO within a lane — QoS reorders BETWEEN tenants, never within one.
//   * Strict priority between classes.
//   * Weighted fairness: over any interval in which a set of same-class
//     lanes stays continuously backlogged, their dequeue counts are
//     proportional to their weights, within one quantum*weight per lane.
//   * Work conservation: pop() returns an item whenever size() > 0.
//   * With a single lane (one tenant, one class) the whole structure
//     degenerates to the plain FIFO the batcher used before QoS.
//
// Not thread-safe: the owner (MicroBatcher) already serializes access under
// its queue mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

namespace tqt::qos {

template <typename T>
class DwrrQueue {
 public:
  explicit DwrrQueue(int64_t quantum = 1) : quantum_(quantum < 1 ? 1 : quantum) {}

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pending items in one lane (the per-tenant admission bound).
  int64_t lane_depth(int klass, uint32_t tenant) const {
    const auto it = lanes_.find(Key{clamp_class(klass), tenant});
    return it == lanes_.end() ? 0 : static_cast<int64_t>(it->second.q.size());
  }

  /// Enqueue into the (klass, tenant) lane. `weight` updates the lane's
  /// weight (last write wins — weights change only on tenant hot reload).
  void push(T item, int klass, uint32_t tenant, int weight) {
    const Key key{clamp_class(klass), tenant};
    Lane& lane = lanes_[key];
    lane.weight = weight < 1 ? 1 : weight;
    lane.q.push_back(std::move(item));
    ++size_;
    if (!lane.active) {
      lane.active = true;
      // A fresh round's worth of deficit on activation keeps a newly-busy
      // lane from waiting a full rotation before its first service.
      lane.deficit = quantum_ * lane.weight;
      ring_[static_cast<size_t>(key.klass)].push_back(key);
    }
  }

  /// Dequeue the next item under strict class priority + DWRR. Empty
  /// optional iff the queue is empty.
  std::optional<T> pop() {
    if (size_ == 0) return std::nullopt;
    for (int klass = kMaxClass; klass >= 0; --klass) {
      auto& ring = ring_[static_cast<size_t>(klass)];
      while (!ring.empty()) {
        const Key key = ring.front();
        Lane& lane = lanes_[key];
        if (lane.q.empty()) {  // drained earlier in this round
          lane.active = false;
          lane.deficit = 0;
          ring.pop_front();
          continue;
        }
        if (lane.deficit < 1) {
          // Spent this round: replenish and rotate to the back. Every
          // rotation adds >= quantum, so a serve happens within one sweep.
          lane.deficit += quantum_ * lane.weight;
          ring.pop_front();
          ring.push_back(key);
          continue;
        }
        lane.deficit -= 1;
        T item = std::move(lane.q.front());
        lane.q.pop_front();
        --size_;
        if (lane.q.empty()) {
          lane.active = false;
          lane.deficit = 0;
          ring.pop_front();
        }
        return item;
      }
    }
    return std::nullopt;  // unreachable while size_ is kept consistent
  }

  /// Visit the front (oldest) item of every backlogged lane — how the
  /// batcher finds the globally oldest request for its fill-delay clock.
  template <typename Fn>
  void for_each_front(Fn&& fn) const {
    for (const auto& [key, lane] : lanes_) {
      if (!lane.q.empty()) fn(lane.q.front());
    }
  }

 private:
  static constexpr int kMaxClass = 2;  // mirrors qos::kClassHigh

  static int clamp_class(int klass) {
    return klass < 0 ? 0 : (klass > kMaxClass ? kMaxClass : klass);
  }

  struct Key {
    int klass = 0;
    uint32_t tenant = 0;
    bool operator<(const Key& o) const {
      return klass != o.klass ? klass < o.klass : tenant < o.tenant;
    }
  };

  struct Lane {
    std::deque<T> q;
    int weight = 1;
    int64_t deficit = 0;
    bool active = false;  // enrolled in its class ring
  };

  int64_t quantum_;
  int64_t size_ = 0;
  std::map<Key, Lane> lanes_;                 // lanes persist; rings track backlog
  std::deque<Key> ring_[kMaxClass + 1];       // active lanes per class
};

}  // namespace tqt::qos
