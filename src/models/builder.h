// Fluent builder over the graph IR for assembling CNN classifiers.
//
// The builder emits the node patterns the Graffitist-style transform passes
// expect: compute layers are Conv2D/DepthwiseConv2D/Dense reading a Variable
// weight edge, followed by either a BatchNorm (pretraining form) or a BiasAdd
// (folded/inference form), followed by an optional activation. It also tracks
// spatial extents so "SAME" conv geometry can be resolved at build time.
#pragma once

#include <map>
#include <string>

#include "nn/graph.h"
#include "tensor/rng.h"

namespace tqt {

enum class Act { kNone, kRelu, kRelu6, kLeakyRelu };

class ModelBuilder {
 public:
  ModelBuilder(std::string model_name, uint64_t seed);

  /// Add the primary input placeholder ("input"), NHWC.
  NodeId input(int64_t size, int64_t channels);

  /// conv (no bias) -> BatchNorm -> activation. He-normal init.
  /// `gamma_log2_spread` > 0 initializes BN gamma to 2^U(-s, s) per channel —
  /// the mechanism that reproduces MobileNets' widely varying per-channel
  /// folded-weight ranges (see DESIGN.md §2).
  NodeId conv_bn(const std::string& name, NodeId in, int64_t cout, int64_t k, int64_t stride,
                 Act act, float gamma_log2_spread = 0.0f);

  /// conv -> BiasAdd -> activation (no BN; used for folded-form models).
  NodeId conv_bias(const std::string& name, NodeId in, int64_t cout, int64_t k, int64_t stride,
                   Act act);

  /// depthwise conv (no bias) -> BatchNorm -> activation.
  NodeId depthwise_bn(const std::string& name, NodeId in, int64_t k, int64_t stride, Act act,
                      float gamma_log2_spread = 0.0f);

  /// Flatten if needed, then dense -> BiasAdd -> activation.
  NodeId dense(const std::string& name, NodeId in, int64_t units, Act act);

  NodeId max_pool(const std::string& name, NodeId in, int64_t k, int64_t stride);
  NodeId avg_pool(const std::string& name, NodeId in, int64_t k, int64_t stride);
  NodeId global_avg_pool(const std::string& name, NodeId in);
  NodeId flatten(const std::string& name, NodeId in);
  NodeId eltwise_add(const std::string& name, NodeId a, NodeId b, Act act = Act::kNone);
  NodeId concat(const std::string& name, const std::vector<NodeId>& inputs);

  NodeId input_node() const { return input_; }
  Graph& graph() { return graph_; }
  Graph take() { return std::move(graph_); }

  /// Channel count of a node's output (builder bookkeeping).
  int64_t channels_of(NodeId id) const { return dims_.at(id).c; }
  int64_t height_of(NodeId id) const { return dims_.at(id).h; }

 private:
  struct Dims {
    int64_t h = 0, w = 0, c = 0;
    bool spatial = true;  // false once flattened
  };

  NodeId activation(const std::string& name, NodeId in, Act act);
  NodeId add_variable(const std::string& name, Tensor init, const std::string& group);
  void set_dims(NodeId id, Dims d) { dims_[id] = d; }

  std::string prefix_;
  Graph graph_;
  Rng rng_;
  NodeId input_ = kNoNode;
  std::map<NodeId, Dims> dims_;
};

}  // namespace tqt
