// The mini model zoo: one small network per CNN family evaluated in the
// paper (Table 3). Each mini network preserves the topological feature that
// drives its family's quantization behaviour:
//
//   MiniVGG          plain conv stacks + dense head          (easy to quantize)
//   MiniInception    parallel towers + channel concat        (scale merging)
//   MiniResNet       residual eltwise-adds                   (shared scales)
//   MiniMobileNetV1  depthwise-separable convs, ReLU6        (hard: per-channel
//                                                             weight-range spread)
//   MiniMobileNetV2  inverted residuals, linear bottlenecks  (hard, adds skips)
//   MiniDarkNet      leaky-ReLU conv stacks                  (16-bit alpha path)
//
// All networks take 16x16x3 inputs and emit `num_classes` logits. MobileNet
// depthwise BN gammas are initialized with a per-channel power-of-2 spread to
// reproduce the folded-weight range irregularity of real MobileNets (§6.2 of
// the paper; DESIGN.md §2 documents the substitution).
#pragma once

#include <string>
#include <vector>

#include "nn/graph.h"

namespace tqt {

enum class ModelKind {
  kMiniVgg,
  kMiniInception,
  kMiniResNet,
  kMiniMobileNetV1,
  kMiniMobileNetV2,
  kMiniDarkNet,
};

std::vector<ModelKind> all_model_kinds();
std::string model_name(ModelKind kind);

struct BuiltModel {
  Graph graph;
  NodeId input = kNoNode;
  NodeId logits = kNoNode;
  std::string name;
};

/// Construct a freshly initialized (untrained) model.
BuiltModel build_model(ModelKind kind, int64_t num_classes = 10, uint64_t seed = 1);

}  // namespace tqt
