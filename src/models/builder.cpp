#include "models/builder.h"

#include <cmath>
#include <stdexcept>

#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "nn/ops_norm.h"

namespace tqt {

ModelBuilder::ModelBuilder(std::string model_name, uint64_t seed)
    : prefix_(std::move(model_name)), rng_(seed) {}

NodeId ModelBuilder::input(int64_t size, int64_t channels) {
  if (input_ != kNoNode) throw std::logic_error("ModelBuilder: input already added");
  input_ = graph_.add("input", std::make_unique<InputOp>());
  set_dims(input_, {size, size, channels, true});
  return input_;
}

NodeId ModelBuilder::add_variable(const std::string& name, Tensor init, const std::string& group) {
  auto p = std::make_shared<Param>(prefix_ + "/" + name, std::move(init), group);
  return graph_.add(name, std::make_unique<VariableOp>(std::move(p)));
}

NodeId ModelBuilder::activation(const std::string& name, NodeId in, Act act) {
  NodeId out = in;
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      out = graph_.add(name + "/relu", std::make_unique<ReluOp>(), {in});
      break;
    case Act::kRelu6:
      out = graph_.add(name + "/relu6", std::make_unique<Relu6Op>(), {in});
      break;
    case Act::kLeakyRelu:
      // Slope 0.125 (not DarkNet's 0.1): a power-of-2 slope is the standard
      // fixed-point-hardware choice and keeps the leaky path bit-exact
      // between the fake-quant graph and the integer engine (DESIGN.md §6).
      out = graph_.add(name + "/leaky", std::make_unique<LeakyReluOp>(0.125f), {in});
      break;
  }
  if (out != in) set_dims(out, dims_.at(in));
  return out;
}

NodeId ModelBuilder::conv_bn(const std::string& name, NodeId in, int64_t cout, int64_t k,
                             int64_t stride, Act act, float gamma_log2_spread) {
  const Dims d = dims_.at(in);
  if (!d.spatial) throw std::logic_error("conv on flattened tensor");
  const float stddev = std::sqrt(2.0f / static_cast<float>(k * k * d.c));
  NodeId w = add_variable(name + "/weight", rng_.normal_tensor({k, k, d.c, cout}, 0.0f, stddev),
                          "weight");
  const auto geom = Conv2dGeom::same(k, k, stride, d.h, d.w);
  NodeId conv = graph_.add(name + "/conv", std::make_unique<Conv2dOp>(geom), {in, w});
  set_dims(conv, {geom.out_h(d.h), geom.out_w(d.w), cout, true});
  auto bn = std::make_unique<BatchNormOp>(prefix_ + "/" + name + "/bn", cout);
  if (gamma_log2_spread > 0.0f) {
    for (int64_t c = 0; c < cout; ++c) {
      bn->gamma()->value[c] = std::exp2(rng_.uniform(-gamma_log2_spread, gamma_log2_spread));
    }
  }
  NodeId norm = graph_.add(name + "/bn", std::move(bn), {conv});
  set_dims(norm, dims_.at(conv));
  return activation(name, norm, act);
}

NodeId ModelBuilder::conv_bias(const std::string& name, NodeId in, int64_t cout, int64_t k,
                               int64_t stride, Act act) {
  const Dims d = dims_.at(in);
  if (!d.spatial) throw std::logic_error("conv on flattened tensor");
  const float stddev = std::sqrt(2.0f / static_cast<float>(k * k * d.c));
  NodeId w = add_variable(name + "/weight", rng_.normal_tensor({k, k, d.c, cout}, 0.0f, stddev),
                          "weight");
  NodeId b = add_variable(name + "/bias", Tensor({cout}), "bias");
  const auto geom = Conv2dGeom::same(k, k, stride, d.h, d.w);
  NodeId conv = graph_.add(name + "/conv", std::make_unique<Conv2dOp>(geom), {in, w});
  set_dims(conv, {geom.out_h(d.h), geom.out_w(d.w), cout, true});
  NodeId biased = graph_.add(name + "/bias_add", std::make_unique<BiasAddOp>(), {conv, b});
  set_dims(biased, dims_.at(conv));
  return activation(name, biased, act);
}

NodeId ModelBuilder::depthwise_bn(const std::string& name, NodeId in, int64_t k, int64_t stride,
                                  Act act, float gamma_log2_spread) {
  const Dims d = dims_.at(in);
  if (!d.spatial) throw std::logic_error("depthwise conv on flattened tensor");
  const float stddev = std::sqrt(2.0f / static_cast<float>(k * k));
  NodeId w = add_variable(name + "/weight", rng_.normal_tensor({k, k, d.c}, 0.0f, stddev),
                          "weight");
  const auto geom = Conv2dGeom::same(k, k, stride, d.h, d.w);
  NodeId conv = graph_.add(name + "/dwconv", std::make_unique<DepthwiseConv2dOp>(geom), {in, w});
  set_dims(conv, {geom.out_h(d.h), geom.out_w(d.w), d.c, true});
  auto bn = std::make_unique<BatchNormOp>(prefix_ + "/" + name + "/bn", d.c);
  if (gamma_log2_spread > 0.0f) {
    // Outlier mixture rather than a uniform spread: real MobileNet depthwise
    // layers have a *few* channels whose folded gain is orders of magnitude
    // above the bulk (and which ReLU6 then saturates, making them
    // information-poor) — exactly the channels a per-tensor MAX threshold
    // wastes its range on (§6.2 of the paper).
    for (int64_t c = 0; c < d.c; ++c) {
      const bool outlier = rng_.uniform(0.0f, 1.0f) < 0.25f;
      bn->gamma()->value[c] = outlier
                                  ? std::exp2(rng_.uniform(gamma_log2_spread - 2.0f, gamma_log2_spread))
                                  : std::exp2(rng_.uniform(-1.0f, 1.0f));
    }
  }
  NodeId norm = graph_.add(name + "/bn", std::move(bn), {conv});
  set_dims(norm, dims_.at(conv));
  return activation(name, norm, act);
}

NodeId ModelBuilder::dense(const std::string& name, NodeId in, int64_t units, Act act) {
  Dims d = dims_.at(in);
  NodeId x = in;
  if (d.spatial) {
    x = flatten(name + "/auto_flatten", in);
    d = dims_.at(x);
  }
  const float stddev = std::sqrt(2.0f / static_cast<float>(d.c));
  NodeId w = add_variable(name + "/weight", rng_.normal_tensor({d.c, units}, 0.0f, stddev),
                          "weight");
  NodeId b = add_variable(name + "/bias", Tensor({units}), "bias");
  NodeId mm = graph_.add(name + "/dense", std::make_unique<DenseOp>(), {x, w});
  set_dims(mm, {0, 0, units, false});
  NodeId biased = graph_.add(name + "/bias_add", std::make_unique<BiasAddOp>(), {mm, b});
  set_dims(biased, dims_.at(mm));
  return activation(name, biased, act);
}

NodeId ModelBuilder::max_pool(const std::string& name, NodeId in, int64_t k, int64_t stride) {
  const Dims d = dims_.at(in);
  const auto geom = Conv2dGeom::same(k, k, stride, d.h, d.w);
  NodeId out = graph_.add(name, std::make_unique<MaxPoolOp>(geom), {in});
  set_dims(out, {geom.out_h(d.h), geom.out_w(d.w), d.c, true});
  return out;
}

NodeId ModelBuilder::avg_pool(const std::string& name, NodeId in, int64_t k, int64_t stride) {
  const Dims d = dims_.at(in);
  const auto geom = Conv2dGeom::same(k, k, stride, d.h, d.w);
  NodeId out = graph_.add(name, std::make_unique<AvgPoolOp>(geom), {in});
  set_dims(out, {geom.out_h(d.h), geom.out_w(d.w), d.c, true});
  return out;
}

NodeId ModelBuilder::global_avg_pool(const std::string& name, NodeId in) {
  const Dims d = dims_.at(in);
  NodeId out = graph_.add(name, std::make_unique<GlobalAvgPoolOp>(), {in});
  set_dims(out, {0, 0, d.c, false});
  return out;
}

NodeId ModelBuilder::flatten(const std::string& name, NodeId in) {
  const Dims d = dims_.at(in);
  NodeId out = graph_.add(name, std::make_unique<FlattenOp>(), {in});
  set_dims(out, {0, 0, d.spatial ? d.h * d.w * d.c : d.c, false});
  return out;
}

NodeId ModelBuilder::eltwise_add(const std::string& name, NodeId a, NodeId b, Act act) {
  const Dims da = dims_.at(a);
  NodeId out = graph_.add(name + "/add", std::make_unique<EltwiseAddOp>(), {a, b});
  set_dims(out, da);
  return activation(name, out, act);
}

NodeId ModelBuilder::concat(const std::string& name, const std::vector<NodeId>& inputs) {
  Dims d = dims_.at(inputs.at(0));
  int64_t total_c = 0;
  for (NodeId id : inputs) total_c += dims_.at(id).c;
  d.c = total_c;
  NodeId out = graph_.add(name, std::make_unique<ConcatOp>(), inputs);
  set_dims(out, d);
  return out;
}

}  // namespace tqt
