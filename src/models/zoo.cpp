#include "models/zoo.h"

#include <stdexcept>

#include "models/builder.h"

namespace tqt {

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::kMiniVgg,         ModelKind::kMiniInception,
          ModelKind::kMiniResNet,      ModelKind::kMiniMobileNetV1,
          ModelKind::kMiniMobileNetV2, ModelKind::kMiniDarkNet};
}

std::string model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMiniVgg: return "mini_vgg";
    case ModelKind::kMiniInception: return "mini_inception";
    case ModelKind::kMiniResNet: return "mini_resnet";
    case ModelKind::kMiniMobileNetV1: return "mini_mobilenet_v1";
    case ModelKind::kMiniMobileNetV2: return "mini_mobilenet_v2";
    case ModelKind::kMiniDarkNet: return "mini_darknet";
  }
  throw std::invalid_argument("unknown model kind");
}

namespace {

constexpr int64_t kImageSize = 16;
constexpr int64_t kChannels = 3;
/// Per-channel power-of-2 spread of depthwise BN gammas; folds into the
/// depthwise weights, reproducing the paper's "irregular weight distributions
/// and widely varying ranges between channels" (§6.2).
constexpr float kDwGammaSpread = 5.0f;

BuiltModel finish(ModelBuilder& b, NodeId logits, ModelKind kind) {
  BuiltModel m;
  m.input = b.input_node();
  m.logits = logits;
  m.name = model_name(kind);
  m.graph = b.take();
  return m;
}

BuiltModel mini_vgg(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniVgg), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("conv1a", x, 8, 3, 1, Act::kRelu);
  x = b.conv_bn("conv1b", x, 8, 3, 1, Act::kRelu);
  x = b.max_pool("pool1", x, 2, 2);
  x = b.conv_bn("conv2a", x, 12, 3, 1, Act::kRelu);
  x = b.conv_bn("conv2b", x, 12, 3, 1, Act::kRelu);
  x = b.max_pool("pool2", x, 2, 2);
  x = b.conv_bn("conv3", x, 16, 3, 1, Act::kRelu);
  x = b.max_pool("pool3", x, 2, 2);
  x = b.dense("fc1", x, 32, Act::kRelu);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniVgg);
}

NodeId inception_block(ModelBuilder& b, const std::string& name, NodeId in, int64_t c1,
                       int64_t c3, int64_t c5, int64_t cp) {
  NodeId t1 = b.conv_bn(name + "/t1_1x1", in, c1, 1, 1, Act::kRelu);
  NodeId t2 = b.conv_bn(name + "/t2_reduce", in, c3 / 2 + 1, 1, 1, Act::kRelu);
  t2 = b.conv_bn(name + "/t2_3x3", t2, c3, 3, 1, Act::kRelu);
  // 5x5 tower factorized as two 3x3s (Inception v2/v3 style).
  NodeId t3 = b.conv_bn(name + "/t3_reduce", in, c5 / 2 + 1, 1, 1, Act::kRelu);
  t3 = b.conv_bn(name + "/t3_3x3a", t3, c5, 3, 1, Act::kRelu);
  t3 = b.conv_bn(name + "/t3_3x3b", t3, c5, 3, 1, Act::kRelu);
  NodeId t4 = b.max_pool(name + "/t4_pool", in, 3, 1);
  t4 = b.conv_bn(name + "/t4_proj", t4, cp, 1, 1, Act::kRelu);
  return b.concat(name + "/concat", {t1, t2, t3, t4});
}

BuiltModel mini_inception(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniInception), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("stem", x, 8, 3, 1, Act::kRelu);
  x = b.max_pool("pool1", x, 2, 2);
  x = inception_block(b, "incep1", x, 4, 6, 4, 3);
  x = b.max_pool("pool2", x, 2, 2);
  x = inception_block(b, "incep2", x, 6, 8, 4, 4);
  x = b.global_avg_pool("gap", x);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniInception);
}

NodeId residual_block(ModelBuilder& b, const std::string& name, NodeId in, int64_t cout,
                      int64_t stride) {
  NodeId branch = b.conv_bn(name + "/conv1", in, cout, 3, stride, Act::kRelu);
  branch = b.conv_bn(name + "/conv2", branch, cout, 3, 1, Act::kNone);
  NodeId shortcut = in;
  if (stride != 1 || b.channels_of(in) != cout) {
    shortcut = b.conv_bn(name + "/proj", in, cout, 1, stride, Act::kNone);
  }
  return b.eltwise_add(name, branch, shortcut, Act::kRelu);
}

BuiltModel mini_resnet(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniResNet), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("stem", x, 8, 3, 1, Act::kRelu);
  x = residual_block(b, "res1a", x, 8, 1);
  x = residual_block(b, "res1b", x, 8, 1);
  x = residual_block(b, "res2a", x, 14, 2);
  x = residual_block(b, "res2b", x, 14, 1);
  x = b.global_avg_pool("gap", x);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniResNet);
}

BuiltModel mini_mobilenet_v1(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniMobileNetV1), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("stem", x, 8, 3, 2, Act::kRelu6);
  auto separable = [&](const std::string& name, NodeId in, int64_t cout, int64_t stride) {
    NodeId dw = b.depthwise_bn(name + "/dw", in, 3, stride, Act::kRelu6, kDwGammaSpread);
    return b.conv_bn(name + "/pw", dw, cout, 1, 1, Act::kRelu6);
  };
  x = separable("sep1", x, 16, 1);
  x = separable("sep2", x, 24, 2);
  x = separable("sep3", x, 24, 1);
  x = separable("sep4", x, 32, 1);
  x = b.global_avg_pool("gap", x);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniMobileNetV1);
}

BuiltModel mini_mobilenet_v2(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniMobileNetV2), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("stem", x, 8, 3, 2, Act::kRelu6);
  auto inverted_residual = [&](const std::string& name, NodeId in, int64_t cout, int64_t stride,
                               int64_t expand) {
    const int64_t cin = b.channels_of(in);
    NodeId h = b.conv_bn(name + "/expand", in, cin * expand, 1, 1, Act::kRelu6);
    h = b.depthwise_bn(name + "/dw", h, 3, stride, Act::kRelu6, kDwGammaSpread);
    h = b.conv_bn(name + "/project", h, cout, 1, 1, Act::kNone);  // linear bottleneck
    if (stride == 1 && cin == cout) h = b.eltwise_add(name, h, in, Act::kNone);
    return h;
  };
  x = inverted_residual("ir1", x, 12, 1, 3);
  x = inverted_residual("ir2", x, 16, 2, 3);
  x = inverted_residual("ir3", x, 16, 1, 3);
  x = b.conv_bn("head", x, 32, 1, 1, Act::kRelu6);
  x = b.global_avg_pool("gap", x);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniMobileNetV2);
}

BuiltModel mini_darknet(int64_t classes, uint64_t seed) {
  ModelBuilder b(model_name(ModelKind::kMiniDarkNet), seed);
  NodeId x = b.input(kImageSize, kChannels);
  x = b.conv_bn("conv1", x, 8, 3, 1, Act::kLeakyRelu);
  x = b.max_pool("pool1", x, 2, 2);
  x = b.conv_bn("conv2", x, 12, 3, 1, Act::kLeakyRelu);
  x = b.max_pool("pool2", x, 2, 2);
  // DarkNet-19 style 3x3 / 1x1 alternation.
  x = b.conv_bn("conv3", x, 16, 3, 1, Act::kLeakyRelu);
  x = b.conv_bn("conv4", x, 8, 1, 1, Act::kLeakyRelu);
  x = b.conv_bn("conv5", x, 16, 3, 1, Act::kLeakyRelu);
  x = b.global_avg_pool("gap", x);
  NodeId logits = b.dense("logits", x, classes, Act::kNone);
  return finish(b, logits, ModelKind::kMiniDarkNet);
}

}  // namespace

BuiltModel build_model(ModelKind kind, int64_t num_classes, uint64_t seed) {
  switch (kind) {
    case ModelKind::kMiniVgg: return mini_vgg(num_classes, seed);
    case ModelKind::kMiniInception: return mini_inception(num_classes, seed);
    case ModelKind::kMiniResNet: return mini_resnet(num_classes, seed);
    case ModelKind::kMiniMobileNetV1: return mini_mobilenet_v1(num_classes, seed);
    case ModelKind::kMiniMobileNetV2: return mini_mobilenet_v2(num_classes, seed);
    case ModelKind::kMiniDarkNet: return mini_darknet(num_classes, seed);
  }
  throw std::invalid_argument("unknown model kind");
}

}  // namespace tqt
