#include "graph_opt/transforms.h"

#include <cmath>
#include <stdexcept>

#include "nn/ops_basic.h"
#include "nn/ops_conv.h"
#include "nn/ops_norm.h"

namespace tqt {

namespace {
/// The Variable op feeding input slot `slot` of node `id`, or nullptr.
VariableOp* variable_input(Graph& g, NodeId id, size_t slot) {
  const Node& n = g.node(id);
  if (slot >= n.inputs.size()) return nullptr;
  return dynamic_cast<VariableOp*>(g.node(n.inputs[slot]).op.get());
}
}  // namespace

int fold_batch_norms(Graph& g) {
  int folded = 0;
  for (NodeId bn_id : g.nodes_of_type("BatchNorm")) {
    Node& bn_node = g.node(bn_id);
    auto* bn = dynamic_cast<BatchNormOp*>(bn_node.op.get());
    const NodeId producer = bn_node.inputs[0];
    const std::string& ptype = g.node(producer).op->type();
    const bool is_conv = ptype == "Conv2D";
    const bool is_dw = ptype == "DepthwiseConv2D";
    const bool is_dense = ptype == "Dense";
    if (!is_conv && !is_dw && !is_dense) continue;
    if (g.consumers(producer).size() != 1) continue;  // conv output reused elsewhere

    VariableOp* wvar = variable_input(g, producer, 1);
    if (!wvar) continue;
    Param& w = *wvar->param();

    const int64_t channels = bn->gamma()->value.numel();
    // Per-output-channel scale gamma / sqrt(var + eps) and shift
    // beta - mean * scale, from the converged moving statistics.
    std::vector<float> scale(static_cast<size_t>(channels));
    Tensor bias({channels});
    for (int64_t c = 0; c < channels; ++c) {
      const float s =
          bn->gamma()->value[c] / std::sqrt(bn->moving_var()->value[c] + bn->eps());
      scale[static_cast<size_t>(c)] = s;
      bias[c] = bn->beta()->value[c] - bn->moving_mean()->value[c] * s;
    }

    // Scale the weights along their output-channel axis.
    if (is_conv) {
      // [kh, kw, Cin, Cout]: channel is the innermost axis.
      if (w.value.dim(3) != channels) throw std::runtime_error("fold: Cout mismatch");
      for (int64_t i = 0; i < w.value.numel(); ++i) {
        w.value[i] *= scale[static_cast<size_t>(i % channels)];
      }
    } else if (is_dw) {
      // [kh, kw, C]: channel innermost as well.
      if (w.value.dim(2) != channels) throw std::runtime_error("fold: C mismatch");
      for (int64_t i = 0; i < w.value.numel(); ++i) {
        w.value[i] *= scale[static_cast<size_t>(i % channels)];
      }
    } else {
      // Dense [K, M]: output axis innermost.
      if (w.value.dim(1) != channels) throw std::runtime_error("fold: M mismatch");
      for (int64_t i = 0; i < w.value.numel(); ++i) {
        w.value[i] *= scale[static_cast<size_t>(i % channels)];
      }
    }

    // conv -> BiasAdd(folded bias) replaces conv -> BN.
    auto bias_param = std::make_shared<Param>(bn->gamma()->name + "/folded_bias", std::move(bias),
                                              "bias");
    const NodeId bias_var =
        g.add(bn_node.name + "/folded_bias", std::make_unique<VariableOp>(bias_param));
    const NodeId bias_add = g.add(bn_node.name + "/folded_bias_add",
                                  std::make_unique<BiasAddOp>(), {producer, bias_var});
    g.rewire_consumers(bn_id, bias_add);
    g.remove(bn_id);
    ++folded;
  }
  return folded;
}

int splice_identities(Graph& g) {
  int spliced = 0;
  for (NodeId id : g.nodes_of_type("Identity")) {
    const NodeId producer = g.node(id).inputs[0];
    g.rewire_consumers(id, producer);
    g.remove(id);
    ++spliced;
  }
  return spliced;
}

int collapse_concats(Graph& g) {
  int collapsed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : g.nodes_of_type("Concat")) {
      Node& n = g.node(id);
      std::vector<NodeId> flat;
      bool any_inner = false;
      for (NodeId in : n.inputs) {
        if (g.node(in).op->type() == "Concat" && g.consumers(in).size() == 1) {
          for (NodeId inner : g.node(in).inputs) flat.push_back(inner);
          any_inner = true;
        } else {
          flat.push_back(in);
        }
      }
      if (!any_inner) continue;
      for (NodeId in : n.inputs) {
        if (g.node(in).op->type() == "Concat" && g.consumers(in).size() == 1) g.remove(in);
      }
      n.inputs = std::move(flat);
      ++collapsed;
      changed = true;
      break;  // consumer lists changed; restart scan
    }
  }
  return collapsed;
}

int pools_to_depthwise(Graph& g, NodeId input_node, const Tensor& sample_input) {
  const auto avg_pools = g.nodes_of_type("AvgPool");
  const auto gaps = g.nodes_of_type("GlobalAvgPool");
  if (avg_pools.empty() && gaps.empty()) return 0;

  // Discover producer shapes with one dry run (outputs stay cached on nodes).
  std::vector<NodeId> outputs = avg_pools;
  outputs.insert(outputs.end(), gaps.begin(), gaps.end());
  std::vector<NodeId> producers;
  for (NodeId id : outputs) producers.push_back(g.node(id).inputs[0]);
  g.run_multi({{input_node, sample_input}}, producers);

  int rewritten = 0;
  auto rewrite = [&](NodeId id, const Conv2dGeom& geom, bool add_flatten) {
    Node& n = g.node(id);
    const NodeId producer = n.inputs[0];
    const Shape& in_shape = g.node(producer).output.shape();
    const int64_t channels = in_shape[3];
    // Reciprocal weights 1/F^2 (§4.1), constant and non-trainable; tagged
    // "weight" so the quantize pass treats this as an ordinary compute layer.
    auto w = std::make_shared<Param>(n.name + "/reciprocal",
                                     Tensor({geom.kh, geom.kw, channels},
                                            1.0f / static_cast<float>(geom.kh * geom.kw)),
                                     "weight", /*trainable=*/false);
    const NodeId wvar = g.add(n.name + "/reciprocal", std::make_unique<VariableOp>(w));
    const NodeId dw = g.add(n.name + "/as_dwconv", std::make_unique<DepthwiseConv2dOp>(geom),
                            {producer, wvar});
    NodeId tail = dw;
    if (add_flatten) {
      tail = g.add(n.name + "/as_dwconv/flatten", std::make_unique<FlattenOp>(), {dw});
    }
    g.rewire_consumers(id, tail);
    g.remove(id);
    ++rewritten;
  };

  for (NodeId id : avg_pools) {
    auto* pool = dynamic_cast<AvgPoolOp*>(g.node(id).op.get());
    rewrite(id, pool->geom(), /*add_flatten=*/false);
  }
  for (NodeId id : gaps) {
    const Shape& in_shape = g.node(g.node(id).inputs[0]).output.shape();
    // Full-window "valid" depthwise conv emits [N,1,1,C]; flatten to [N,C].
    rewrite(id, Conv2dGeom::valid(in_shape[1], in_shape[2], 1), /*add_flatten=*/true);
  }
  return rewritten;
}

void optimize_for_quantization(Graph& g, NodeId input_node, const Tensor& sample_input) {
  splice_identities(g);
  collapse_concats(g);
  fold_batch_norms(g);
  pools_to_depthwise(g, input_node, sample_input);
}

}  // namespace tqt
