// Graffitist-style graph optimizations run before quantization (paper §4.1):
//
//  - fold_batch_norms:   BN folded into the preceding conv / depthwise-conv /
//                        dense weights using the (frozen) moving statistics,
//                        leaving a conv -> BiasAdd -> act chain. Folding with
//                        converged moving statistics makes the training and
//                        inference forms mathematically equivalent, which is
//                        the paper's requirement (a); statistic freezing —
//                        requirement (c) — is available on BatchNormOp.
//  - splice_identities:  remove Identity nodes not involved in control edges.
//  - collapse_concats:   concat-of-concat flattened into a single concat.
//  - pools_to_depthwise: AvgPool / GlobalAvgPool rewritten as depthwise convs
//                        with constant reciprocal (1/F^2) weights so the
//                        quantize pass can treat them as ordinary compute
//                        layers (§4.1, §4.3 "average pool").
#pragma once

#include "nn/graph.h"

namespace tqt {

/// Returns the number of BatchNorm nodes folded.
int fold_batch_norms(Graph& g);

/// Returns the number of Identity nodes spliced out.
int splice_identities(Graph& g);

/// Returns the number of Concat nodes collapsed into their consumer.
int collapse_concats(Graph& g);

/// Returns the number of pooling nodes rewritten. GlobalAvgPool becomes a
/// full-window depthwise conv followed by Flatten. The IR carries no static
/// shape inference, so a sample input is run through the graph to discover
/// channel counts.
int pools_to_depthwise(Graph& g, NodeId input_node, const Tensor& sample_input);

/// Run the standard pre-quantization pipeline: splice identities, collapse
/// concats, fold batch norms, rewrite average pools.
void optimize_for_quantization(Graph& g, NodeId input_node, const Tensor& sample_input);

}  // namespace tqt
