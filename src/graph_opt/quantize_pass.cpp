#include "graph_opt/quantize_pass.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "nn/ops_basic.h"
#include "quant/asymmetric.h"
#include "quant/calibrate.h"
#include "tensor/ops.h"

namespace tqt {

FakeQuantOp& fake_quant_at(Graph& g, NodeId id) {
  auto* q = dynamic_cast<FakeQuantOp*>(g.node(id).op.get());
  if (!q) throw std::invalid_argument("node " + g.node(id).name + " is not a FakeQuant");
  return *q;
}

namespace {

bool is_compute(const std::string& type) {
  return type == "Conv2D" || type == "DepthwiseConv2D" || type == "Dense";
}

/// Walk up through scale-preserving ops to the quantizer node that defines
/// the scale of `id`'s output (a FakeQuant or AsymFakeQuant node).
NodeId find_scale_source(Graph& g, NodeId id) {
  for (int hops = 0; hops < 64; ++hops) {
    const std::string type = g.node(id).op->type();
    if (type == "FakeQuant" || type == "AsymFakeQuant") return id;
    if (type == "MaxPool" || type == "Flatten" || type == "Identity" || type == "Concat") {
      id = g.node(id).inputs[0];
      continue;
    }
    throw std::runtime_error("quantize: output of node " + g.node(id).name +
                             " (type " + type + ") is not quantized");
  }
  throw std::runtime_error("quantize: scale-source walk did not terminate");
}

/// Single consumer of `id` with the given type, or kNoNode.
NodeId sole_consumer_of_type(Graph& g, NodeId id, std::initializer_list<const char*> types) {
  const auto cons = g.consumers(id);
  if (cons.size() != 1) return kNoNode;
  const std::string& t = g.node(cons[0]).op->type();
  for (const char* want : types)
    if (t == want) return cons[0];
  return kNoNode;
}

struct PassState {
  Graph& g;
  const QuantizeConfig& cfg;
  QuantizePassResult& res;

  /// Per-tensor activation spec at the policy's act bit-width, with the
  /// config's scale constraint folded in.
  QuantSpec act_spec(int bits, bool sgn = true) const {
    return QuantSpec{bits, sgn, -1, cfg.power_of_2};
  }

  /// Symmetric activation quantizer (the TQT scheme, or a clipped baseline).
  std::unique_ptr<FakeQuantOp> sym_act_quant(const QuantSpec& spec, const std::string& name,
                                             ParamPtr shared = nullptr) const {
    ParamPtr th = shared ? std::move(shared)
                         : make_threshold(name + "/log2_t", 0.0f, cfg.trainable_thresholds);
    return std::make_unique<FakeQuantOp>(spec, cfg.mode, std::move(th));
  }

  /// Activation quantizer per the configured scheme (asymmetric baseline or
  /// symmetric). `shared` must match the scheme when supplied.
  std::unique_ptr<Op> act_quant(const QuantSpec& spec, const std::string& name,
                                ParamPtr shared = nullptr) const {
    if (cfg.asymmetric) {
      ParamPtr range = shared ? std::move(shared)
                              : std::make_shared<Param>(name + "/range", Tensor({2}, {-1.0f, 1.0f}),
                                                        "threshold", cfg.trainable_thresholds);
      return std::make_unique<AsymmetricFakeQuantOp>(QuantSpec{spec.bits, false, -1, false},
                                                     std::move(range));
    }
    return sym_act_quant(spec, name, std::move(shared));
  }

  ParamPtr make_shared_act_param(const std::string& name) const {
    if (cfg.asymmetric) {
      return std::make_shared<Param>(name + "/range", Tensor({2}, {-1.0f, 1.0f}), "threshold",
                                     cfg.trainable_thresholds);
    }
    return make_threshold(name + "/log2_t", 0.0f, cfg.trainable_thresholds);
  }
};

/// Quantize one compute layer (conv / depthwise / dense) per §4.3.
void quantize_compute(PassState& st, NodeId c, bool min_int8_weights) {
  Graph& g = st.g;
  const std::string& name = g.node(c).name;

  // --- Weight quantizer -----------------------------------------------------
  const NodeId wvar_id = g.node(c).inputs[1];
  auto* wvar = dynamic_cast<VariableOp*>(g.node(wvar_id).op.get());
  if (!wvar) throw std::runtime_error("quantize: compute layer " + name + " has no Variable weight");
  int wb = st.cfg.precision.wbits;
  // First/last layers and constant (reciprocal) weights stay at INT8 minimum.
  if (wb < 8 && (min_int8_weights || !wvar->param()->trainable)) wb = 8;

  NodeId qw_id;
  if (st.cfg.asymmetric) {
    auto range = std::make_shared<Param>(name + "/quant_w/range", Tensor({2}, {-1.0f, 1.0f}),
                                         "threshold", st.cfg.trainable_thresholds);
    qw_id = g.insert_on_edge(
        wvar_id, c, name + "/quant_w",
        std::make_unique<AsymmetricFakeQuantOp>(QuantSpec{wb, false, -1, false}, std::move(range)));
  } else if (st.cfg.precision.per_channel_weights) {
    const std::string& type = g.node(c).op->type();
    const int64_t axis = type == "Conv2D" ? 3 : (type == "DepthwiseConv2D" ? 2 : 1);
    const int64_t channels = wvar->param()->value.dim(axis);
    auto ths = std::make_shared<Param>(name + "/quant_w/log2_t", Tensor({channels}), "threshold",
                                       st.cfg.trainable_thresholds);
    qw_id = g.insert_on_edge(
        wvar_id, c, name + "/quant_w",
        std::make_unique<FakeQuantOp>(QuantSpec{wb, true, axis, st.cfg.power_of_2},
                                      QuantMode::kTqt, std::move(ths)));
  } else {
    auto th = make_threshold(name + "/quant_w/log2_t", 0.0f, st.cfg.trainable_thresholds);
    qw_id = g.insert_on_edge(wvar_id, c, name + "/quant_w",
                             std::make_unique<FakeQuantOp>(QuantSpec{wb, true, -1, st.cfg.power_of_2},
                                                           st.cfg.mode, std::move(th)));
  }
  st.res.weight_quants.push_back(qw_id);

  // Validate the data input is quantized (throws otherwise).
  (void)find_scale_source(g, g.node(c).inputs[0]);

  // --- q16 accumulator + merged-scale bias (emulate_intermediates) ----------
  NodeId cur = c;
  ParamPtr acc_threshold;
  if (st.cfg.emulate_intermediates) {
    auto acc = st.sym_act_quant(st.act_spec(16), name + "/quant_acc");
    acc_threshold = acc->threshold();
    cur = g.insert_after(c, name + "/quant_acc", std::move(acc));
    st.res.act_quants.push_back(cur);
  }

  // --- BiasAdd ---------------------------------------------------------------
  if (NodeId bias_add = sole_consumer_of_type(g, cur, {"BiasAdd"}); bias_add != kNoNode) {
    if (st.cfg.emulate_intermediates) {
      const NodeId bvar = g.node(bias_add).inputs[1];
      // Bias shares the accumulator's threshold (the q' merge of §4.3) so
      // the fixed-point add happens at one scale.
      const NodeId qb = g.insert_on_edge(
          bvar, bias_add, name + "/quant_b",
          st.sym_act_quant(st.act_spec(16), name + "/quant_b", acc_threshold));
      st.res.act_quants.push_back(qb);
    }
    cur = bias_add;
  }

  // --- Output quantizer, delayed past ReLU/ReLU6, unsigned when delayed -----
  const QuantSpec out8 = st.act_spec(st.cfg.precision.abits, true);
  const QuantSpec out8u = st.act_spec(st.cfg.precision.abits, false);
  if (NodeId relu = sole_consumer_of_type(g, cur, {"Relu", "Relu6"}); relu != kNoNode) {
    const NodeId qa = g.insert_after(relu, g.node(relu).name + "/quant",
                                     st.act_quant(out8u, g.node(relu).name + "/quant"));
    st.res.act_quants.push_back(qa);
  } else if (NodeId leaky = sole_consumer_of_type(g, cur, {"LeakyRelu"}); leaky != kNoNode) {
    // Leaky ReLU path (§4.3): keep 16-bit precision into the alpha-multiply,
    // quantize alpha to 16 bits, then emit q8 after the activation.
    const NodeId q16 =
        g.insert_on_edge(cur, leaky, name + "/quant_pre_leaky",
                         st.act_quant(st.act_spec(16), name + "/quant_pre_leaky"));
    st.res.act_quants.push_back(q16);
    auto* lop = dynamic_cast<LeakyReluOp*>(g.node(leaky).op.get());
    const float alpha = lop->alpha();
    // One magnitude bit of headroom so an exactly power-of-2 alpha does not
    // saturate at the top level (round(2^k / s) == 2^15 would clip).
    const float s_alpha = std::exp2(static_cast<float>(
        static_cast<int>(std::ceil(std::log2(alpha))) - (int16_signed().scale_shift() - 1)));
    lop->set_alpha(round_half_to_even(alpha / s_alpha) * s_alpha);
    const NodeId qa = g.insert_after(leaky, g.node(leaky).name + "/quant",
                                     st.act_quant(out8, g.node(leaky).name + "/quant"));
    st.res.act_quants.push_back(qa);
  } else {
    const NodeId qa =
        g.insert_after(cur, name + "/quant_out", st.act_quant(out8, name + "/quant_out"));
    st.res.act_quants.push_back(qa);
  }
}

/// Quantize an eltwise-add: shared-scale q'8 on both inputs, q8 after
/// (delayed past ReLU and unsigned if present).
void quantize_eltwise(PassState& st, NodeId add) {
  Graph& g = st.g;
  const std::string& name = g.node(add).name;
  ParamPtr shared = st.make_shared_act_param(name + "/quant_in");
  const QuantSpec q8 = st.act_spec(st.cfg.precision.abits, true);
  // Snapshot inputs: inserting on edge 0 must not disturb slot 1.
  const std::vector<NodeId> ins = g.node(add).inputs;
  for (size_t slot = 0; slot < ins.size(); ++slot) {
    const NodeId q = g.add(name + "/quant_in" + std::to_string(slot),
                           st.act_quant(q8, name + "/quant_in" + std::to_string(slot), shared),
                           {ins[slot]});
    // Replace exactly this slot (both slots may read the same producer).
    g.node(add).inputs[slot] = q;
    st.res.act_quants.push_back(q);
  }
  if (NodeId relu = sole_consumer_of_type(g, add, {"Relu", "Relu6"}); relu != kNoNode) {
    const NodeId qa =
        g.insert_after(relu, g.node(relu).name + "/quant",
                       st.act_quant(st.act_spec(st.cfg.precision.abits, false),
                                    g.node(relu).name + "/quant"));
    st.res.act_quants.push_back(qa);
  } else {
    const NodeId qa = g.insert_after(add, name + "/quant_out", st.act_quant(q8, name + "/quant_out"));
    st.res.act_quants.push_back(qa);
  }
}

/// Merge the threshold params of the quantizers feeding each Concat (§4.3:
/// concat is lossless because input scales are explicitly merged).
void merge_concat_scales(Graph& g) {
  for (NodeId cat : g.nodes_of_type("Concat")) {
    std::vector<NodeId> sources;
    for (NodeId in : g.node(cat).inputs) sources.push_back(find_scale_source(g, in));
    if (sources.size() < 2) continue;
    if (auto* first = dynamic_cast<FakeQuantOp*>(g.node(sources[0]).op.get())) {
      const ParamPtr& shared = first->threshold();
      for (size_t i = 1; i < sources.size(); ++i) {
        auto* q = dynamic_cast<FakeQuantOp*>(g.node(sources[i]).op.get());
        if (!q || q->bits().is_signed != first->bits().is_signed ||
            q->bits().bits != first->bits().bits) {
          throw std::runtime_error("concat scale merge: mismatched quantizer types");
        }
        q->set_threshold(shared);
      }
    } else {
      auto* first_a = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(sources[0]).op.get());
      const ParamPtr& shared = first_a->range();
      for (size_t i = 1; i < sources.size(); ++i) {
        auto* q = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(sources[i]).op.get());
        if (!q || q->bits() != first_a->bits()) {
          throw std::runtime_error("concat scale merge: mismatched quantizer types");
        }
        q->set_range(shared);
      }
    }
  }
}

}  // namespace

QuantizePassResult quantize_pass(Graph& g, NodeId input_node, NodeId logits,
                                 const QuantizeConfig& cfg) {
  if (cfg.mode == QuantMode::kPact) {
    throw std::invalid_argument("quantize_pass: PACT is an activation-only baseline quantizer");
  }
  cfg.precision.validate(QuantUse::kTraining);
  // Per-channel power-of-2 weights export to the fixed-point engine (the
  // per-channel exponents become requant shift tables), so they compose with
  // the q16 intermediates emulation. Per-channel *real-scale* weights remain
  // a float-only baseline: a real per-channel scale cannot ride the engine's
  // shift-only requant.
  if (cfg.precision.per_channel_weights && cfg.emulate_intermediates && !cfg.power_of_2) {
    throw std::invalid_argument(
        "quantize_pass: per-channel real-scale weights cannot emulate power-of-2 intermediates");
  }
  if (cfg.asymmetric &&
      (cfg.emulate_intermediates || cfg.power_of_2 || cfg.precision.per_channel_weights)) {
    throw std::invalid_argument(
        "quantize_pass: asymmetric is a baseline scheme (no intermediates emulation, "
        "no power-of-2 scaling, no per-channel)");
  }
  QuantizePassResult res;
  PassState st{g, cfg, res};

  // Primary input is explicitly quantized (§4.3).
  res.input_quant = g.insert_after(
      input_node, "input/quant",
      st.act_quant(st.act_spec(cfg.precision.abits, true), "input/quant"));
  res.act_quants.push_back(res.input_quant);

  // First/last compute layers keep INT8 weights in INT4 mode (§6.1). Only
  // layers with trainable weights count (reciprocal pools are constants).
  const auto order = g.topo_order({logits});
  std::vector<NodeId> compute_nodes;
  NodeId first_compute = kNoNode, last_compute = kNoNode;
  for (NodeId id : order) {
    if (!is_compute(g.node(id).op->type())) continue;
    compute_nodes.push_back(id);
    auto* wvar = dynamic_cast<VariableOp*>(g.node(g.node(id).inputs[1]).op.get());
    if (wvar && wvar->param()->trainable) {
      if (first_compute == kNoNode) first_compute = id;
      last_compute = id;
    }
  }

  for (NodeId id : order) {
    const std::string& type = g.node(id).op->type();
    if (is_compute(type)) {
      quantize_compute(st, id, id == first_compute || id == last_compute);
    } else if (type == "EltwiseAdd") {
      quantize_eltwise(st, id);
    } else if (type == "BatchNorm") {
      throw std::runtime_error("quantize_pass: fold batch norms first (node " + g.node(id).name +
                               ")");
    } else if (type == "AvgPool" || type == "GlobalAvgPool") {
      throw std::runtime_error("quantize_pass: rewrite pools first (node " + g.node(id).name + ")");
    }
  }

  merge_concat_scales(g);

  // The network output itself is quantized; consumers (loss, eval) should
  // read res.quantized_output.
  res.quantized_output = g.insert_after(
      logits, g.node(logits).name + "/quant",
      st.act_quant(st.act_spec(cfg.precision.abits, true), g.node(logits).name + "/quant"));
  st.res.act_quants.push_back(res.quantized_output);
  return res;
}

void calibrate_thresholds(Graph& g, const QuantizePassResult& result, NodeId input_node,
                          const Tensor& calib_images, WeightInit weight_init) {
  // --- Weight thresholds from tensor statistics (no data needed) ------------
  for (NodeId id : result.weight_quants) {
    auto* wvar = dynamic_cast<VariableOp*>(g.node(g.node(id).inputs[0]).op.get());
    const Tensor& w = wvar->param()->value;
    if (auto* aq = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(id).op.get())) {
      // TF-QAT style: the range is the weight min/max, nudged to include 0.
      aq->range()->value[0] = std::min(0.0f, w.min());
      aq->range()->value[1] = std::max(0.0f, w.max());
      continue;
    }
    FakeQuantOp& q = fake_quant_at(g, id);
    if (q.per_channel()) {
      const int64_t axis = q.channel_axis();
      const auto ts = per_channel_max_thresholds(w, axis);
      for (size_t c = 0; c < ts.size(); ++c) {
        q.threshold()->value[static_cast<int64_t>(c)] = std::log2(ts[c]);
      }
    } else {
      float t;
      if (weight_init == WeightInit::kMax || !wvar->param()->trainable) {
        t = max_threshold(std::span(w.vec()));
      } else if (weight_init == WeightInit::kPercentile999) {
        t = percentile_threshold(std::span(w.vec()), 99.9f);
      } else {
        t = sd_threshold(std::span(w.vec()), 3.0f);
      }
      if (q.mode() == QuantMode::kLsq) {
        // LSQ learns the raw scale-factor: initialize s = t / qmax.
        q.threshold()->value[0] = t / static_cast<float>(q.bits().qmax());
      } else {
        q.threshold()->value[0] = std::log2(t);
      }
    }
  }

  // --- Activation thresholds: KL-J, strictly topological, pooled per shared
  // --- threshold group -------------------------------------------------------
  std::vector<std::vector<NodeId>> groups;
  std::map<Param*, size_t> group_of;
  for (NodeId id : result.act_quants) {
    Param* key;
    if (auto* aq = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(id).op.get())) {
      key = aq->range().get();
    } else {
      key = fake_quant_at(g, id).threshold().get();
    }
    auto [it, fresh] = group_of.try_emplace(key, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(id);
  }

  const Feed feed{{input_node, calib_images}};
  for (const auto& group : groups) {
    const bool asym = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(group.front()).op.get()) != nullptr;
    for (NodeId id : group) {
      if (asym) {
        dynamic_cast<AsymmetricFakeQuantOp*>(g.node(id).op.get())->set_collect(true);
      } else {
        fake_quant_at(g, id).set_collect(true);
      }
    }
    g.run(feed, result.quantized_output);
    if (asym) {
      // Asymmetric baseline: min/max over the group's observed data (with 0
      // representable, gemmlowp-style).
      float lo = 0.0f, hi = 0.0f;
      for (NodeId id : group) {
        auto* q = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(id).op.get());
        for (float v : q->collected()) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        q->clear_collected();
        q->set_collect(false);
      }
      auto* q0 = dynamic_cast<AsymmetricFakeQuantOp*>(g.node(group.front()).op.get());
      if (hi <= lo) hi = lo + 1e-6f;
      q0->range()->value[0] = lo;
      q0->range()->value[1] = hi;
      continue;
    }
    // A shared (merged) scale must cover every tensor that flows through it:
    // calibrate each member on its own data and take the largest threshold.
    // Pooling the members' values into one KL-J would let a small-range
    // member drag the shared threshold down and clip the others (the
    // multi-modal pooled-distribution failure).
    float t_shared = 0.0f;
    for (NodeId id : group) {
      FakeQuantOp& q = fake_quant_at(g, id);
      t_shared = std::max(t_shared, kl_j_threshold(q.collected(), q.spec()));
      q.clear_collected();
      q.set_collect(false);
    }
    FakeQuantOp& q0 = fake_quant_at(g, group.front());
    if (q0.mode() == QuantMode::kLsq) {
      q0.threshold()->value[0] = t_shared / static_cast<float>(q0.bits().qmax());
    } else {
      q0.threshold()->value[0] = std::log2(t_shared);
    }
  }
}

void set_quantizers_enabled(Graph& g, bool enabled) {
  for (NodeId id : g.nodes_of_type("FakeQuant")) fake_quant_at(g, id).set_enabled(enabled);
  for (NodeId id : g.nodes_of_type("AsymFakeQuant")) {
    dynamic_cast<AsymmetricFakeQuantOp*>(g.node(id).op.get())->set_enabled(enabled);
  }
}

std::vector<ParamPtr> threshold_params(Graph& g, const QuantizePassResult& result) {
  std::vector<ParamPtr> out;
  auto push_all = [&](NodeId id) {
    for (const auto& p : g.node(id).op->params()) {
      if (p && p->group == "threshold" && std::find(out.begin(), out.end(), p) == out.end()) {
        out.push_back(p);
      }
    }
  };
  for (NodeId id : result.weight_quants) push_all(id);
  for (NodeId id : result.act_quants) push_all(id);
  return out;
}

}  // namespace tqt
