// The quantize pass: inserts FakeQuant nodes into an optimized (BN-folded,
// pool-rewritten) graph following the layer-precision topology of paper §4.3:
//
//   compute layers   q8( q'16( sum( q8/4(w) * q8(x) ) ) + q'16(b) )
//                    with the final q8 delayed past ReLU/ReLU6 and switched
//                    to unsigned to use the spare sign bit;
//   eltwise-add      q8( q'8(x) + q'8(y) ) with a shared input threshold;
//   leaky relu       q8( max( q'16(x), q16(alpha) * q'16(x) ) );
//   concat           input scales merged, concat itself lossless;
//   avg pool         an ordinary compute layer after pools_to_depthwise;
//   primary input    explicitly quantized q8.
//
// The q'16 accumulator/bias quantizers use *derived* scales s_w * s_x so the
// graph maps 1:1 onto the fixed-point engine (src/fixedpoint); their
// exponents track the trained thresholds automatically. First and last
// compute layers are kept at a minimum of INT8 in INT4 mode (§6.1).
#pragma once

#include <map>
#include <vector>

#include "nn/graph.h"
#include "quant/fake_quant.h"

namespace tqt {

struct QuantizeConfig {
  /// Model-level precision: weight/activation bit-widths (8/8, 4/8, ...) and
  /// the per-channel-weights switch. Per-channel power-of-2 weights compose
  /// with emulate_intermediates and export to the fixed-point engine (the
  /// per-channel exponents ride the exec plan as requant shift tables);
  /// per-channel *real-scale* weights remain a float-only Table 1 baseline.
  PrecisionPolicy precision;
  QuantMode mode = QuantMode::kTqt;
  bool trainable_thresholds = true;  ///< false for static (calibrate-only) mode
  bool power_of_2 = true;
  /// Insert the q16 accumulator/bias emulation. Required for fixed-point
  /// export; disabled for the plain QAT-style baselines of Table 1.
  bool emulate_intermediates = true;
  /// Asymmetric (zero-point) quantization of weights and activations — the
  /// TF-QAT scheme of Table 1's "per-tensor, asymmetric, real scaling" row.
  /// Baseline only: incompatible with emulate_intermediates and power_of_2.
  bool asymmetric = false;
};

struct QuantizePassResult {
  std::vector<NodeId> weight_quants;  ///< FakeQuant on Variable -> compute edges
  std::vector<NodeId> act_quants;     ///< threshold-carrying activation quantizers
                                      ///< (input quant, q16 acc/bias, outputs),
                                      ///< in calibration (topological) order
  NodeId input_quant = kNoNode;
  NodeId quantized_output = kNoNode;  ///< q8 of the logits; feed this to the loss
};

/// Insert quantization nodes. The graph must already be BN-folded and
/// pool-rewritten (see optimize_for_quantization). `input_node` is the
/// primary placeholder; `logits` the network output.
QuantizePassResult quantize_pass(Graph& g, NodeId input_node, NodeId logits,
                                 const QuantizeConfig& cfg);

/// Weight-threshold initialization scheme (paper Table 2; §5.1 mentions both
/// "n standard deviations or percentile" as tight alternatives to MAX).
enum class WeightInit { kMax, k3Sd, kPercentile999 };

/// Calibrate every threshold (paper §4.2 static mode / §5.1 initialization):
/// weights from their tensor statistics (MAX or 3SD), activations by KL-J
/// distance on a calibration batch, computed strictly in topological order so
/// each layer calibrates against already-quantized inputs. Thresholds that
/// share a parameter (merged scales) are calibrated jointly on pooled data.
void calibrate_thresholds(Graph& g, const QuantizePassResult& result, NodeId input_node,
                          const Tensor& calib_images, WeightInit weight_init);

/// Enable/disable every FakeQuant in the graph (disabled = FP32 baseline).
void set_quantizers_enabled(Graph& g, bool enabled);

/// The FakeQuantOp of a node id (throws if the node is not a FakeQuant).
FakeQuantOp& fake_quant_at(Graph& g, NodeId id);

/// Collect the distinct threshold/range parameters of the pass result
/// (works for both symmetric FakeQuant and asymmetric AsymFakeQuant nodes).
std::vector<ParamPtr> threshold_params(Graph& g, const QuantizePassResult& result);

}  // namespace tqt
