// Visualize threshold-training dynamics on the toy L2 problem (§3.4 / App. B)
// as ASCII trajectories: how the log2-threshold of a single quantizer evolves
// under raw-gradient SGD, log-gradient SGD, normed-log SGD and log-Adam.
//
// Build & run:  ./build/examples/threshold_dynamics
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "quant/toy_model.h"

namespace {

void plot(const char* title, const std::vector<float>& traj, float lo, float hi) {
  constexpr int kRows = 12;
  constexpr int kCols = 72;
  std::printf("\n%s   (y: log2 t in [%.1f, %.1f], x: %zu steps)\n", title, lo, hi, traj.size());
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  for (size_t i = 0; i < traj.size(); ++i) {
    const int col = static_cast<int>(i * kCols / traj.size());
    float v = std::min(std::max(traj[i], lo), hi);
    const int row = kRows - 1 - static_cast<int>((v - lo) / (hi - lo) * (kRows - 1) + 0.5f);
    canvas[static_cast<size_t>(row)][static_cast<size_t>(col)] = '*';
  }
  for (int r = 0; r < kRows; ++r) {
    const float y = hi - (hi - lo) * static_cast<float>(r) / (kRows - 1);
    std::printf("%7.2f |%s\n", y, canvas[static_cast<size_t>(r)].c_str());
  }
}

}  // namespace

int main() {
  using namespace tqt;
  std::printf("Toy L2 quantization problem: Gaussian(sigma=0.1) input, INT8, lr=0.1,\n");
  std::printf("threshold initialized 3 bins too high. Watch who converges (App. B).\n");

  ToyRunConfig cfg;
  cfg.bits = int8_signed();
  cfg.sigma = 0.1f;
  cfg.steps = 600;
  cfg.lr = 0.1f;
  cfg.log2_t0 = std::log2(cfg.sigma) + 3.0f;

  struct Case {
    ToyOptimizer opt;
    const char* name;
  } cases[] = {
      {ToyOptimizer::kRawSgd, "raw-threshold SGD (unstable band, B.1)"},
      {ToyOptimizer::kLogSgd, "log-threshold SGD (slow for small sigma, B.2)"},
      {ToyOptimizer::kNormedLogSgd, "normed log SGD (Eqs. 17-18)"},
      {ToyOptimizer::kLogAdam, "log Adam (the paper's recipe)"},
  };
  const float lo = std::log2(cfg.sigma) - 4.0f;
  const float hi = cfg.log2_t0 + 1.0f;
  for (const Case& c : cases) {
    const ToyRunResult r = run_toy_training(cfg, c.opt);
    plot(c.name, r.log2_t, lo, hi);
    std::printf("        final log2 t = %.3f, empirical r_g = %.1f\n", r.final_log2_t,
                r.empirical_rg);
  }
  return 0;
}
