// The paper's headline scenario: MobileNets are hard to quantize with
// per-tensor symmetric scaling because BN-folded depthwise weights have
// wildly varying per-channel ranges. This example walks through what each
// level of machinery buys:
//
//   static calibration       -> collapses
//   retraining weights only  -> partial recovery (thresholds stay wrong)
//   TQT (weights+thresholds) -> recovers to ~FP32, despite power-of-2,
//                               per-tensor, symmetric constraints
//
// Build & run:  ./build/examples/mobilenet_tqt
#include <cmath>
#include <cstdio>

#include "core/pipeline.h"
#include "graph_opt/quantize_pass.h"
#include "nn/dot.h"
#include "nn/ops_basic.h"
#include "quant/calibrate.h"

int main() {
  using namespace tqt;
  SyntheticImageDataset data(default_dataset_config());
  const ModelKind kind = ModelKind::kMiniMobileNetV1;
  std::printf("Pretraining %s...\n", model_name(kind).c_str());
  const auto state = load_or_pretrain(kind, data, "tqt_artifacts");
  const Accuracy fp32 = eval_fp32(kind, state, data);
  std::printf("\nFP32 baseline:              top-1 = %5.1f%%\n", 100.0 * fp32.top1());

  // Show the problem first: per-channel range spread of a folded depthwise
  // weight tensor.
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kStatic;
    TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("Static INT8 (per-tensor):   top-1 = %5.1f%%   <- collapses\n",
                100.0 * out.accuracy.top1());

    for (NodeId id : out.model.graph.nodes_of_type("DepthwiseConv2D")) {
      Graph& g = out.model.graph;
      const NodeId wq = g.node(id).inputs[1];
      if (g.node(wq).op->type() != "FakeQuant") continue;
      const NodeId wvar = g.node(wq).inputs[0];
      auto* var = dynamic_cast<VariableOp*>(g.node(wvar).op.get());
      if (!var || !var->param()->trainable) continue;
      const Tensor& w = var->param()->value;
      const auto per_channel = per_channel_max_thresholds(w, 2);
      float lo = per_channel[0], hi = per_channel[0];
      for (float t : per_channel) {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      std::printf("  %-28s per-channel |w|max spread: %8.4f .. %8.3f  (%.0fx)\n",
                  g.node(id).name.c_str(), lo, hi, hi / lo);
    }
  }
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWt;
    cfg.schedule = default_retrain_schedule(4.0f);
    TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("Retrain weights only INT8:  top-1 = %5.1f%%   <- cannot fix thresholds\n",
                100.0 * out.accuracy.top1());
  }
  {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kRetrainWtTh;
    cfg.schedule = default_retrain_schedule(4.0f);
    TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("TQT retrain (wt, th) INT8:  top-1 = %5.1f%%   <- ~FP32 with p-of-2 per-tensor\n",
                100.0 * out.accuracy.top1());
    // Dump the quantized graph for inspection (xdot / graphviz).
    const std::string dot_path = "tqt_artifacts/" + model_name(kind) + "_quantized.dot";
    write_dot(out.model.graph, dot_path, model_name(kind) + " (quantized)");
    std::printf("\nQuantized graph written to %s (render with graphviz).\n", dot_path.c_str());
  }
  return 0;
}
