// Deployment walkthrough: train with TQT, then compile the quantized
// inference graph into the integer-only fixed-point program — the artifact
// that would be "ported directly onto the target of choice" (paper §4.2) —
// and inspect what the hardware actually executes: int8 tensors, int32
// accumulators, and power-of-2 rescales as single bit-shifts.
//
// Build & run:  ./build/examples/fixedpoint_deploy
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "fixedpoint/engine.h"

namespace {
const char* kind_name(tqt::FpInstr::Kind k) {
  using K = tqt::FpInstr::Kind;
  switch (k) {
    case K::kQuantizeInput: return "quantize_input";
    case K::kConv2d: return "conv2d.int8";
    case K::kDepthwise: return "depthwise.int8";
    case K::kDense: return "dense.int8";
    case K::kBiasAdd: return "bias_add.int16";
    case K::kRequant: return "requant(shift)";
    case K::kRelu: return "relu.int";
    case K::kRelu6: return "relu6.int";
    case K::kLeakyRelu: return "leaky_relu.int";
    case K::kMaxPool: return "maxpool.int";
    case K::kEltwiseAdd: return "eltwise_add.int";
    case K::kConcat: return "concat";
    case K::kFlatten: return "flatten";
    case K::kConv2dFused: return "conv2d.int8+epi";
    case K::kDepthwiseFused: return "depthwise.int8+epi";
    case K::kDenseFused: return "dense.int8+epi";
    case K::kLayoutPack: return "layout_pack.nc8hw8";
    case K::kLayoutUnpack: return "layout_unpack.nc8hw8";
  }
  return "?";
}
}  // namespace

int main() {
  using namespace tqt;
  SyntheticImageDataset data(default_dataset_config());
  const ModelKind kind = ModelKind::kMiniDarkNet;  // exercises the leaky-ReLU q16 path
  std::printf("Pretraining %s...\n", model_name(kind).c_str());
  const auto state = load_or_pretrain(kind, data, "tqt_artifacts");

  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;
  cfg.schedule = default_retrain_schedule(3.0f);
  std::printf("TQT retraining...\n");
  TrialOutput out = run_quant_trial(kind, state, data, cfg);
  out.model.graph.set_training(false);

  const FixedPointProgram prog =
      compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);

  std::printf("\nCompiled fixed-point program: %lld instructions, %lld integer parameters\n",
              static_cast<long long>(prog.instruction_count()),
              static_cast<long long>(prog.parameter_count()));
  std::map<std::string, int> histogram;
  for (const auto& instr : prog.instructions()) histogram[kind_name(instr.kind)]++;
  for (const auto& [name, count] : histogram) std::printf("  %-18s x%d\n", name.c_str(), count);

  std::printf("\nFirst few instructions:\n");
  int shown = 0;
  for (const auto& instr : prog.instructions()) {
    std::printf("  %-18s  %-40s", kind_name(instr.kind), instr.debug_name.c_str());
    if (instr.kind == FpInstr::Kind::kRequant || instr.kind == FpInstr::Kind::kQuantizeInput) {
      std::printf("  -> scale 2^%d, clamp [%lld, %lld]", instr.out_exponent,
                  static_cast<long long>(instr.clamp_lo), static_cast<long long>(instr.clamp_hi));
    }
    std::printf("\n");
    if (++shown == 12) break;
  }

  // Ship it: serialize the program (the deployment artifact) and reload it.
  const std::string artifact = "tqt_artifacts/" + model_name(kind) + "_int8.tqtp";
  prog.save(artifact);
  const FixedPointProgram shipped = FixedPointProgram::load(artifact);
  std::printf("\nSerialized program to %s and reloaded it.\n", artifact.c_str());

  // Bit-exactness + accuracy of the integer program on the validation set.
  Accuracy fake_acc, fixed_acc;
  bool bit_exact = true;
  ExecContext ctx;  // reused across batches: steady-state engine runs allocate nothing
  Tensor fixed;
  for (int64_t first = 0; first < data.val_size(); first += 64) {
    const Batch b = data.val_batch(first, std::min<int64_t>(64, data.val_size() - first));
    const Tensor fake =
        out.model.graph.run({{out.model.input, b.images}}, out.qres.quantized_output);
    shipped.run_into(b.images, ctx, fixed);
    bit_exact = bit_exact && fake.equals(fixed);
    accumulate_topk(fake, b.labels, fake_acc);
    accumulate_topk(fixed, b.labels, fixed_acc);
  }
  std::printf("\nValidation: fake-quant graph %.1f%%, integer program %.1f%%, bit-exact: %s\n",
              100.0 * fake_acc.top1(), 100.0 * fixed_acc.top1(), bit_exact ? "yes" : "NO");
  return bit_exact ? 0 : 1;
}
