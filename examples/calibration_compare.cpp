// Compare threshold calibrators (MAX, 3SD, percentile, KL-J — paper Table 2 /
// §4.2) on a long-tailed distribution, then show what each choice does to
// static INT8 accuracy of a real network.
//
// Build & run:  ./build/examples/calibration_compare
#include <cmath>
#include <cstdio>

#include "core/pipeline.h"
#include "quant/calibrate.h"
#include "tensor/rng.h"

int main() {
  using namespace tqt;

  // Part 1: calibrators on a synthetic long-tailed distribution.
  Rng rng(9);
  Tensor x = rng.normal_tensor({50000});
  for (int i = 0; i < 50; ++i) x[rng.uniform_int(0, x.numel() - 1)] = rng.uniform(20.0f, 60.0f);
  std::printf("Gaussian(1) with 50 outliers up to |60|:\n");
  std::printf("  %-22s t = %8.3f\n", "MAX", max_threshold(std::span(x.vec())));
  std::printf("  %-22s t = %8.3f\n", "3SD", sd_threshold(std::span(x.vec()), 3.0f));
  std::printf("  %-22s t = %8.3f\n", "percentile 99.9", percentile_threshold(std::span(x.vec()), 99.9f));
  std::printf("  %-22s t = %8.3f\n", "KL-J (INT8)", kl_j_threshold(std::span(x.vec()), QuantSpec{8}));
  std::printf("MAX wastes the int8 grid on outliers; KL-J/3SD/percentile clip the tail.\n");

  // Part 2: the same story on a network — static INT8 accuracy under
  // different weight-threshold initializations (activations always KL-J).
  SyntheticImageDataset data(default_dataset_config());
  const ModelKind kind = ModelKind::kMiniMobileNetV1;
  std::printf("\nPretraining %s...\n", model_name(kind).c_str());
  const auto state = load_or_pretrain(kind, data, "tqt_artifacts");
  std::printf("FP32 top-1: %.1f%%\n", 100.0 * eval_fp32(kind, state, data).top1());
  for (WeightInit init : {WeightInit::kMax, WeightInit::k3Sd}) {
    QuantTrialConfig cfg;
    cfg.mode = TrialMode::kStatic;
    cfg.weight_init = init;
    TrialOutput out = run_quant_trial(kind, state, data, cfg);
    std::printf("Static INT8, weights %s: top-1 = %.1f%%\n",
                init == WeightInit::kMax ? "MAX" : "3SD", 100.0 * out.accuracy.top1());
  }
  std::printf("\nNeither static choice rescues a hard network — which is the paper's point:\n"
              "thresholds must be *trained* (run examples/mobilenet_tqt next).\n");
  return 0;
}
