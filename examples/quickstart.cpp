// Quickstart: the whole TQT pipeline in one sitting.
//
//   1. build a small CNN and pretrain it in FP32 on the synthetic dataset;
//   2. fold batch norms and rewrite pools (Graffitist-style optimization);
//   3. insert TQT fake-quantization (INT8, per-tensor, symmetric, power-of-2);
//   4. calibrate thresholds (MAX/3SD weights, KL-J activations);
//   5. retrain weights AND thresholds jointly for a couple of epochs;
//   6. evaluate, and export a bit-exact integer-only program.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "fixedpoint/engine.h"

int main() {
  using namespace tqt;

  // 1. Dataset + FP32 pretraining (cached to ./tqt_artifacts on first run).
  SyntheticImageDataset data(default_dataset_config());
  std::printf("Pretraining mini_resnet in FP32 (first run takes ~a minute)...\n");
  const auto fp32_state = load_or_pretrain(ModelKind::kMiniResNet, data, "tqt_artifacts");
  const Accuracy fp32 = eval_fp32(ModelKind::kMiniResNet, fp32_state, data);
  std::printf("FP32 top-1: %.1f%%\n", 100.0 * fp32.top1());

  // 2-5. Quantize (INT8 TQT) and retrain weights + thresholds.
  QuantTrialConfig cfg;
  cfg.mode = TrialMode::kRetrainWtTh;       // the TQT flavour
  cfg.quant.precision.wbits = 8;                // INT8 weights, INT8 activations
  cfg.schedule = default_retrain_schedule(/*epochs=*/3.0f);
  std::printf("Quantizing + TQT retraining (wt, th)...\n");
  TrialOutput out = run_quant_trial(ModelKind::kMiniResNet, fp32_state, data, cfg);
  std::printf("INT8 TQT top-1: %.1f%% (best at epoch %.1f)\n", 100.0 * out.accuracy.top1(),
              out.best_epoch);

  // 6. Export to the integer-only fixed-point engine and sanity-check that it
  // is bit-exact against the fake-quant graph (the paper's FPGA contract).
  out.model.graph.set_training(false);
  const FixedPointProgram prog =
      compile_fixed_point(out.model.graph, out.model.input, out.qres.quantized_output);
  const Batch probe = data.val_batch(0, 16);
  const Tensor fake = out.model.graph.run({{out.model.input, probe.images}},
                                          out.qres.quantized_output);
  ExecContext ctx;
  Tensor fixed;
  prog.run_into(probe.images, ctx, fixed);
  std::printf("Fixed-point program: %lld instructions, %lld int parameters, bit-exact: %s\n",
              static_cast<long long>(prog.instruction_count()),
              static_cast<long long>(prog.parameter_count()),
              fake.equals(fixed) ? "yes" : "NO");
  return fake.equals(fixed) ? 0 : 1;
}
